//! Flat combining (Hendler, Incze, Shavit & Tzafrir 2010).
//!
//! The delegation ancestor of QDL (and the mechanism Grappa uses, §2.3):
//! threads publish operations; one thread — the combiner — acquires the
//! lock and applies a bounded batch of published operations before
//! releasing. Unlike QDL there is no detached execution: every publisher
//! waits for its own operation to complete.

use crossbeam::queue::SegQueue;
use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Job<T> = Box<dyn FnOnce(&mut T) + Send>;

/// A flat-combining lock protecting `T`.
pub struct FcLock<T> {
    mutex: RawMutex,
    queue: SegQueue<Job<T>>,
    /// Combining pass bound: how many publications one combiner applies
    /// before handing the role over (prevents combiner starvation).
    combine_limit: usize,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only touched while holding `mutex`.
unsafe impl<T: Send> Sync for FcLock<T> {}
unsafe impl<T: Send> Send for FcLock<T> {}

impl<T> FcLock<T> {
    pub fn new(combine_limit: usize, data: T) -> Self {
        assert!(combine_limit > 0, "combine limit must be positive");
        FcLock {
            mutex: RawMutex::INIT,
            queue: SegQueue::new(),
            combine_limit,
            data: UnsafeCell::new(data),
        }
    }

    /// Publish a critical section and wait for its completion (possibly by
    /// becoming the combiner ourselves).
    pub fn with<R: Send + 'static>(&self, f: impl FnOnce(&mut T) -> R + Send + 'static) -> R {
        // Publication record: `value` is written exactly once before `done`
        // is released and read only after `done` is acquired.
        struct Record<R> {
            done: AtomicBool,
            value: UnsafeCell<Option<R>>,
        }
        // SAFETY: see the protocol above.
        unsafe impl<R: Send> Sync for Record<R> {}
        let slot = Arc::new(Record::<R> {
            done: AtomicBool::new(false),
            value: UnsafeCell::new(None),
        });
        let rec = slot.clone();
        self.queue.push(Box::new(move |data: &mut T| {
            let r = f(data);
            unsafe { *rec.value.get() = Some(r) };
            rec.done.store(true, Ordering::Release);
        }));

        let mut spins = 0u32;
        while !slot.done.load(Ordering::Acquire) {
            if self.mutex.try_lock() {
                // SAFETY: we hold the mutex.
                let data = unsafe { &mut *self.data.get() };
                let mut applied = 0;
                while applied < self.combine_limit {
                    match self.queue.pop() {
                        Some(job) => {
                            job(data);
                            applied += 1;
                        }
                        None => break,
                    }
                }
                // SAFETY: locked above.
                unsafe { self.mutex.unlock() };
                continue;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: `done` acquired; writer wrote before releasing it.
        unsafe { (*slot.value.get()).take().expect("combiner lost a result") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(FcLock::new(128, 0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        l.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.with(|v| *v), 160_000);
    }

    #[test]
    fn small_combine_limit_still_correct() {
        let lock = Arc::new(FcLock::new(1, 0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        l.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.with(|v| *v), 20_000);
    }

    #[test]
    fn returns_results() {
        let lock = FcLock::new(8, vec![1, 2, 3]);
        let sum: i32 = lock.with(|v| v.iter().sum());
        assert_eq!(sum, 6);
    }
}
