//! The hierarchical backoff lock (Radović & Hagersten 2003), cited by the
//! paper (§2.2) as an early NUMA-aware design: a plain test-and-set lock
//! where remote threads back off *longer* than threads on the holder's own
//! NUMA node, so the lock statistically stays nearby and the protected
//! data migrates less.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI32, Ordering};

const FREE: i32 = -1;

/// An HBO lock protecting `T`.
pub struct HboLock<T> {
    /// Holder's socket id, or `FREE`.
    owner_socket: AtomicI32,
    /// Base backoff iterations for same-socket waiters.
    local_backoff: u32,
    /// Backoff iterations for remote-socket waiters (the knob that makes
    /// it "hierarchical": remote threads yield the next acquisition to
    /// nearby ones).
    remote_backoff: u32,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only accessed between a successful CAS acquire and the
// matching release.
unsafe impl<T: Send> Sync for HboLock<T> {}
unsafe impl<T: Send> Send for HboLock<T> {}

impl<T> HboLock<T> {
    pub fn new(local_backoff: u32, remote_backoff: u32, data: T) -> Self {
        HboLock {
            owner_socket: AtomicI32::new(FREE),
            local_backoff,
            remote_backoff,
            data: UnsafeCell::new(data),
        }
    }

    /// Run `f` with exclusive access, from a thread on `socket`.
    pub fn with<R>(&self, socket: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let my = socket as i32;
        let mut backoff = self.local_backoff;
        loop {
            match self
                .owner_socket
                .compare_exchange(FREE, my, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(holder) => {
                    // Remote waiters back off harder, biasing the next
                    // hand-off toward the holder's socket.
                    let base = if holder == my {
                        self.local_backoff
                    } else {
                        self.remote_backoff
                    };
                    for _ in 0..backoff {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                    backoff = (backoff.saturating_mul(2)).min(base * 16).max(base);
                }
            }
        }
        // SAFETY: we hold the lock.
        let result = f(unsafe { &mut *self.data.get() });
        self.owner_socket.store(FREE, Ordering::Release);
        result
    }
}

impl<T: Send> crate::local::CsLock<T> for HboLock<T> {
    fn with<R: Send + 'static>(
        &self,
        socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        HboLock::with(self, socket, f)
    }
    fn name(&self) -> &'static str {
        "hbo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(HboLock::new(8, 64, 0u64));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        l.with(i % 4, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(0, |v| assert_eq!(*v, 80_000));
    }

    #[test]
    fn reentrant_sequential_use() {
        let lock = HboLock::new(4, 32, Vec::new());
        for i in 0..100 {
            lock.with(0, |v| v.push(i));
        }
        lock.with(0, |v| assert_eq!(v.len(), 100));
    }
}
