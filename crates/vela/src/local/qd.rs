//! Queue Delegation Locking (Klaftenegger, Sagonas & Winblad 2014).
//!
//! Instead of moving the *lock* (and the protected data) to each thread,
//! QDL moves the *operations* to wherever the lock is currently held: a
//! thread that finds the lock busy enqueues its critical section into a
//! delegation queue and either waits for the result or **detaches** —
//! continues with other work and collects the result later. The lock
//! holder ("helper") executes queued sections in large batches on one core,
//! keeping the protected data hot in its caches.

use crossbeam::queue::SegQueue;
use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Job<T> = Box<dyn FnOnce(&mut T) + Send>;

struct ResultSlot<R> {
    done: AtomicBool,
    value: UnsafeCell<Option<R>>,
}

// SAFETY: `value` is written exactly once (before `done` is released) and
// read only after `done` is acquired.
unsafe impl<R: Send> Sync for ResultSlot<R> {}

/// Handle to a delegated, possibly detached, critical section.
///
/// Dropping the future without waiting is allowed: the section will still
/// execute (it lives in the queue), its result is discarded.
pub struct QdFuture<R> {
    slot: Arc<ResultSlot<R>>,
}

impl<R> QdFuture<R> {
    /// Has the delegated section completed?
    pub fn is_done(&self) -> bool {
        self.slot.done.load(Ordering::Acquire)
    }

    fn take(&self) -> R {
        // SAFETY: done was acquired; the writer released it after writing.
        unsafe { (*self.slot.value.get()).take().expect("result taken twice") }
    }
}

/// A queue delegation lock protecting `T`.
///
/// ```
/// use vela::QdLock;
///
/// let lock = QdLock::new(Vec::new());
/// // Detached: returns immediately, executes when someone helps.
/// let fut = lock.delegate(|v: &mut Vec<i32>| {
///     v.push(1);
///     v.len()
/// });
/// // Synchronous: also flushes the queue ahead of it.
/// let len = lock.delegate_wait(|v| v.len());
/// assert_eq!(len, 1);
/// assert_eq!(lock.wait(fut), 1);
/// ```
pub struct QdLock<T> {
    mutex: RawMutex,
    queue: SegQueue<Job<T>>,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only touched by the thread holding `mutex`.
unsafe impl<T: Send> Sync for QdLock<T> {}
unsafe impl<T: Send> Send for QdLock<T> {}

impl<T> QdLock<T> {
    pub fn new(data: T) -> Self {
        QdLock {
            mutex: RawMutex::INIT,
            queue: SegQueue::new(),
            data: UnsafeCell::new(data),
        }
    }

    /// Become the helper if the lock is free: drain the delegation queue
    /// until empty. Returns true if we helped.
    fn try_help(&self) -> bool {
        if !self.mutex.try_lock() {
            return false;
        }
        // SAFETY: we hold the mutex.
        let data = unsafe { &mut *self.data.get() };
        while let Some(job) = self.queue.pop() {
            job(data);
        }
        // SAFETY: we locked it above.
        unsafe { self.mutex.unlock() };
        true
    }

    /// Delegate a critical section and **detach**: return immediately with
    /// a future. The section runs when any thread next helps (including a
    /// later `wait` on this future).
    pub fn delegate<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> QdFuture<R> {
        let slot = Arc::new(ResultSlot {
            done: AtomicBool::new(false),
            value: UnsafeCell::new(None),
        });
        let s = slot.clone();
        self.queue.push(Box::new(move |data: &mut T| {
            let r = f(data);
            // SAFETY: sole writer; readers wait for `done`.
            unsafe { *s.value.get() = Some(r) };
            s.done.store(true, Ordering::Release);
        }));
        // Opportunistically become the helper so detached work cannot
        // starve when the lock is idle.
        if !self.queue.is_empty() {
            self.try_help();
        }
        QdFuture { slot }
    }

    /// Wait for a delegated section to complete, helping if possible.
    pub fn wait<R>(&self, future: QdFuture<R>) -> R {
        let mut spins = 0u32;
        while !future.is_done() {
            if self.try_help() && future.is_done() {
                break;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        future.take()
    }

    /// Delegate and wait: the classic synchronous critical section.
    pub fn delegate_wait<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        let fut = self.delegate(f);
        self.wait(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegate_wait_mutual_exclusion() {
        let lock = Arc::new(QdLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        l.delegate_wait(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.delegate_wait(|v| *v), 160_000);
    }

    #[test]
    fn detached_sections_eventually_run() {
        let lock = Arc::new(QdLock::new(Vec::new()));
        let futs: Vec<_> = (0..100).map(|i| lock.delegate(move |v| v.push(i))).collect();
        // A final synchronous op flushes everything before it.
        let len = lock.delegate_wait(|v| v.len());
        assert_eq!(len, 100);
        for f in futs {
            assert!(f.is_done());
        }
    }

    #[test]
    fn results_are_returned_in_order_of_execution() {
        let lock = QdLock::new(0u64);
        let f1 = lock.delegate(|v| {
            *v += 1;
            *v
        });
        let f2 = lock.delegate(|v| {
            *v += 1;
            *v
        });
        let r2 = lock.wait(f2);
        let r1 = lock.wait(f1);
        assert_eq!((r1, r2), (1, 2));
    }

    #[test]
    fn helper_batches_across_threads() {
        // Many threads delegate detached work; a single wait drains it all.
        let lock = Arc::new(QdLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = l.delegate(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.delegate_wait(|v| *v), 4000);
    }

    #[test]
    fn dropping_future_does_not_lose_update() {
        let lock = QdLock::new(0u64);
        drop(lock.delegate(|v| *v += 5));
        assert_eq!(lock.delegate_wait(|v| *v), 5);
    }
}
