//! A FIFO ticket spinlock — the building block of the cohort lock's global
//! and local tiers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Classic ticket lock: `next` hands out tickets, `owner` admits them in
/// order. Fair (FIFO) by construction.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicU64,
    owner: AtomicU64,
}

impl TicketLock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire, spinning until our ticket is served (yielding after a
    /// bounded spin so oversubscribed hosts make progress).
    pub fn lock(&self) {
        let my = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.owner.load(Ordering::Acquire) != my {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Release. Must only be called by the current holder.
    pub fn unlock(&self) {
        // The holder is the only writer of `owner`, so a plain
        // load+store pair is race-free.
        let cur = self.owner.load(Ordering::Relaxed);
        self.owner.store(cur + 1, Ordering::Release);
    }

    /// Are threads queued behind the current holder? (Used by the cohort
    /// lock to decide whether a local pass is worthwhile.)
    pub fn has_waiters(&self) -> bool {
        let owner = self.owner.load(Ordering::Relaxed);
        let next = self.next.load(Ordering::Relaxed);
        next > owner + 1
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self) -> bool {
        let owner = self.owner.load(Ordering::Relaxed);
        self.next
            .compare_exchange(owner, owner + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let shadow = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (l, c, s) = (lock.clone(), counter.clone(), shadow.clone());
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        l.lock();
                        // Non-atomic-looking increment through two atomics:
                        // races would lose updates.
                        let v = c.load(Ordering::Relaxed);
                        s.store(v, Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn has_waiters_sees_queue() {
        let l = TicketLock::new();
        assert!(!l.has_waiters());
        l.lock();
        assert!(!l.has_waiters());
        l.unlock();
    }
}
