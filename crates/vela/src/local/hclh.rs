//! The hierarchical CLH lock (Luchangco, Nussbaum & Shavit 2006), cited in
//! §2.2: waiters first queue on a per-socket ("local") CLH queue; the local
//! queue's head splices the whole local batch onto the global queue at
//! once, so consecutive holders tend to share a socket.
//!
//! This implementation composes two tiers of our plain CLH/ticket
//! machinery: a per-socket ticket lock selects a socket representative,
//! which competes on a global CLH-style queue; the representative passes
//! the lock through its socket's waiters (bounded by a pass limit) before
//! releasing the global tier — functionally the splice semantics with
//! simpler memory management.

use crate::local::ticket::TicketLock;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

struct Tier {
    lock: TicketLock,
    owns_global: AtomicU64,
    passes: AtomicU64,
}

/// A hierarchical CLH-style lock protecting `T`.
///
/// The global tier is a FIFO ticket queue (the original uses a CLH queue;
/// both are strict FIFO — the hierarchical behaviour comes entirely from
/// the batched local tier, which is what this reproduces).
pub struct HclhLock<T> {
    global_ticket: TicketLock,
    tiers: Vec<Tier>,
    pass_limit: u64,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only accessed while holding the local tier of a socket
// that owns the global tier.
unsafe impl<T: Send> Sync for HclhLock<T> {}
unsafe impl<T: Send> Send for HclhLock<T> {}

impl<T> HclhLock<T> {
    pub fn new(sockets: usize, pass_limit: u64, data: T) -> Self {
        assert!(sockets > 0);
        HclhLock {
            global_ticket: TicketLock::new(),
            tiers: (0..sockets)
                .map(|_| Tier {
                    lock: TicketLock::new(),
                    owns_global: AtomicU64::new(0),
                    passes: AtomicU64::new(0),
                })
                .collect(),
            pass_limit,
            data: UnsafeCell::new(data),
        }
    }

    /// Run `f` with exclusive access, from a thread on `socket`.
    pub fn with<R>(&self, socket: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let tier = &self.tiers[socket % self.tiers.len()];
        tier.lock.lock();
        if tier.owns_global.load(Ordering::Relaxed) == 0 {
            self.global_ticket.lock();
            tier.owns_global.store(1, Ordering::Relaxed);
            tier.passes.store(0, Ordering::Relaxed);
        }
        // SAFETY: local + global tiers held.
        let result = f(unsafe { &mut *self.data.get() });
        let passes = tier.passes.load(Ordering::Relaxed);
        if tier.lock.has_waiters() && passes < self.pass_limit {
            tier.passes.store(passes + 1, Ordering::Relaxed);
            tier.lock.unlock();
        } else {
            tier.owns_global.store(0, Ordering::Relaxed);
            self.global_ticket.unlock();
            tier.lock.unlock();
        }
        result
    }
}

impl<T: Send> crate::local::CsLock<T> for HclhLock<T> {
    fn with<R: Send + 'static>(
        &self,
        socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        HclhLock::with(self, socket, f)
    }
    fn name(&self) -> &'static str {
        "hclh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(HclhLock::new(4, 32, 0u64));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        l.with(i % 4, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(0, |v| assert_eq!(*v, 80_000));
    }

    #[test]
    fn zero_pass_limit_is_correct() {
        let lock = Arc::new(HclhLock::new(2, 0, 0u64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        l.with(i % 2, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(0, |v| assert_eq!(*v, 20_000));
    }
}
