//! Ablation: HQDL batch size.
//!
//! HQDL's benefit comes from executing *many* critical sections per
//! global-lock tenure (one SI at queue open, one SD at close, amortized).
//! With `batch_limit = 1` every section pays the full fence + global-lock
//! round trip — approximating non-hierarchical (remote) delegation, which
//! the paper argues "does not save us any self-invalidations and
//! self-downgrades" (§4.2).

use argo::{ArgoConfig, ArgoMachine};
use bench::prioq::{LocalWork, WORK_UNIT_CYCLES};
use bench::{cell, f2, full_scale, print_header, print_row};
use vela::{DsmPairingHeap, Hqdl};

fn run(nodes: usize, tpn: usize, batch: usize, ops: usize) -> f64 {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.bytes_per_node = 16 << 20;
    let m = ArgoMachine::new(cfg);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(1 << 16), 8)
        .expect("global memory");
    let lock = Hqdl::new(dsm.clone(), batch);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, 1 << 16);
            for k in 0..512 {
                h.insert(&d0, &mut ctx.thread, k * 7);
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            w.run(48);
            ctx.thread.compute(48 * WORK_UNIT_CYCLES);
            let dsm = d0.clone();
            if w.coin() {
                let k = w.key();
                let _ = lock.delegate(&mut ctx.thread, move |ht| heap.insert(&dsm, ht, k));
            } else {
                lock.delegate_wait(&mut ctx.thread, move |ht| {
                    heap.extract_min(&dsm, ht);
                });
            }
        }
        lock.delegate_wait(&mut ctx.thread, |_| {});
        0.0
    });
    let total_ops = (ops * nodes * tpn) as f64;
    total_ops / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

fn main() {
    let full = full_scale();
    let (nodes, tpn, ops) = if full { (8, 15, 300) } else { (4, 4, 120) };
    print_header(
        &format!("Ablation: HQDL batch limit ({nodes} nodes x {tpn} threads, ops/us)"),
        &["batch", "ops/us"],
    );
    for batch in [1usize, 4, 16, 64, 256, 1024] {
        let t = run(nodes, tpn, batch, ops);
        print_row(&[cell(batch), f2(t)]);
    }
    println!("\nExpectation: throughput rises steeply with batch size — batch 1 pays a");
    println!("global lock round trip + SI + SD per section (remote-delegation cost).");
}
