//! Coherence-policy head-to-head: the same workloads under Carina SI/SD
//! and Tardis timestamp leases, on both transports.
//!
//! Runs matmul, SOR, and NAS EP under each policy on the virtual-time
//! simulator (virtual cycles) and the native backend (wall seconds), plus
//! a fence-heavy read-mostly loop where the policies differ most. Prints
//! one table row per (workload, policy, backend) with the run's lease and
//! invalidation ledgers, and asserts every checksum pair is bit-identical
//! across policies — the head-to-head is only meaningful if both engines
//! compute the same answer.
//!
//! Usage: `bench_coherence` (text table to stdout; feeds EXPERIMENTS.md).

use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaSiSd, Coherence, Tardis};
use workloads::harness::Outcome;
use workloads::{ep, matmul, sor};

struct Row {
    workload: &'static str,
    policy: &'static str,
    backend: &'static str,
    cycles: u64,
    wall_seconds: f64,
    checksum: f64,
    si_invalidated: u64,
    si_kept: u64,
    lease_kept: u64,
    read_misses: u64,
}

fn row(workload: &'static str, policy: &'static str, backend: &'static str, o: &Outcome) -> Row {
    Row {
        workload,
        policy,
        backend,
        cycles: o.cycles,
        wall_seconds: o.wall_seconds,
        checksum: o.checksum,
        si_invalidated: o.coherence.si_invalidated,
        si_kept: o.coherence.si_kept,
        lease_kept: o.coherence.lease_kept,
        read_misses: o.coherence.read_misses,
    }
}

fn run_pair<F>(workload: &'static str, rows: &mut Vec<Row>, run: F)
where
    F: Fn(bool, bool) -> Outcome, // (tardis?, native?) -> outcome
{
    let sisd_sim = run(false, false);
    let tardis_sim = run(true, false);
    let sisd_nat = run(false, true);
    let tardis_nat = run(true, true);
    assert_eq!(
        sisd_sim.checksum.to_bits(),
        tardis_sim.checksum.to_bits(),
        "{workload}: policies disagree on the simulator"
    );
    assert_eq!(
        sisd_nat.checksum.to_bits(),
        tardis_nat.checksum.to_bits(),
        "{workload}: policies disagree on the native backend"
    );
    rows.push(row(workload, "sisd", "sim", &sisd_sim));
    rows.push(row(workload, "tardis", "sim", &tardis_sim));
    rows.push(row(workload, "sisd", "native", &sisd_nat));
    rows.push(row(workload, "tardis", "native", &tardis_nat));
}

/// Fence-heavy read-mostly loop: one writer initializes a region, readers
/// then sweep it through repeated acquire fences while nothing changes —
/// the published-data pattern leases were designed for.
fn read_mostly<C: Coherence>(native: bool) -> Outcome {
    use argo::types::GlobalF64Array;
    let cfg = ArgoConfig::small(4, 2);
    fn run<T: rma::Transport, C: Coherence>(m: &std::sync::Arc<ArgoMachine<T, C>>) -> Outcome {
        let n = 16 * 1024usize;
        let arr = GlobalF64Array::alloc(m.dsm(), n);
        let report = m.run(move |ctx| {
            if ctx.tid() == 0 {
                for i in 0..n {
                    arr.set(ctx, i, i as f64);
                }
            }
            // No start_measurement here: resetting the directory would
            // erase the writer's registration and leave the pages S/NW,
            // which not even SI/SD invalidates. The interesting case is
            // S/SW: one registered writer, fences every round.
            ctx.barrier();
            let mut sum = 0.0;
            for _round in 0..10 {
                ctx.barrier(); // SI+SD per round; the data never changes
                for i in (0..n).step_by(64) {
                    sum += arr.get(ctx, i);
                }
            }
            sum
        });
        Outcome {
            cycles: report.cycles,
            seconds: report.seconds,
            wall_seconds: report.wall_seconds,
            checksum: report.results.iter().sum(),
            coherence: report.coherence,
            net: report.net,
            profile: report.profile,
        }
    }
    if native {
        run(&ArgoMachine::<rma::NativeTransport, C>::native_with_policy(cfg))
    } else {
        run(&ArgoMachine::<rma::SimTransport, C>::with_policy(cfg))
    }
}

fn main() {
    let mut rows = Vec::new();

    let p = matmul::MatmulParams { n: 96 };
    run_pair("matmul_96", &mut rows, |tardis, native| match (tardis, native) {
        (false, false) => matmul::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(ArgoConfig::small(4, 2)), p),
        (true, false) => matmul::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(ArgoConfig::small(4, 2)), p),
        (false, true) => matmul::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(ArgoConfig::small(4, 2)), p),
        (true, true) => matmul::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(ArgoConfig::small(4, 2)), p),
    });

    let p = sor::SorParams { n: 96, iterations: 8, omega: 1.25 };
    run_pair("sor_96x8", &mut rows, |tardis, native| match (tardis, native) {
        (false, false) => sor::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(ArgoConfig::small(4, 2)), p),
        (true, false) => sor::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(ArgoConfig::small(4, 2)), p),
        (false, true) => sor::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(ArgoConfig::small(4, 2)), p),
        (true, true) => sor::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(ArgoConfig::small(4, 2)), p),
    });

    let p = ep::EpParams { pairs: 1 << 14 };
    run_pair("ep_16k", &mut rows, |tardis, native| match (tardis, native) {
        (false, false) => ep::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(ArgoConfig::small(4, 2)), p),
        (true, false) => ep::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(ArgoConfig::small(4, 2)), p),
        (false, true) => ep::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(ArgoConfig::small(4, 2)), p),
        (true, true) => ep::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(ArgoConfig::small(4, 2)), p),
    });

    run_pair("read_mostly_10r", &mut rows, |tardis, native| {
        if tardis {
            read_mostly::<Tardis>(native)
        } else {
            read_mostly::<CarinaSiSd>(native)
        }
    });

    println!(
        "{:<16} {:<7} {:<7} {:>14} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "workload", "policy", "backend", "cycles", "wall_ms", "si_inval", "si_kept", "lease_kept", "rd_misses"
    );
    for r in &rows {
        println!(
            "{:<16} {:<7} {:<7} {:>14} {:>10.3} {:>10} {:>8} {:>10} {:>10}",
            r.workload,
            r.policy,
            r.backend,
            r.cycles,
            r.wall_seconds * 1e3,
            r.si_invalidated,
            r.si_kept,
            r.lease_kept,
            r.read_misses
        );
    }

    // The headline claims, machine-checked on every run:
    // Tardis must reduce SI invalidations on the read-mostly pattern.
    let inval = |w: &str, p: &str| {
        rows.iter()
            .find(|r| r.workload == w && r.policy == p && r.backend == "sim")
            .map(|r| r.si_invalidated)
            .unwrap()
    };
    let (s, t) = (inval("read_mostly_10r", "sisd"), inval("read_mostly_10r", "tardis"));
    assert!(
        t < s,
        "tardis must avoid invalidations on read-mostly sharing (sisd {s}, tardis {t})"
    );
    println!("\nread-mostly SI invalidations: sisd {s} vs tardis {t} ({:.1}x fewer)", s as f64 / t.max(1) as f64);
    let _ = rows.last().map(|r| r.checksum); // checksums asserted in run_pair

    // Virtual-cycle comparison on the sim backend.
    for w in ["matmul_96", "sor_96x8", "ep_16k", "read_mostly_10r"] {
        let c = |p: &str| {
            rows.iter()
                .find(|r| r.workload == w && r.policy == p && r.backend == "sim")
                .map(|r| r.cycles)
                .unwrap()
        };
        println!("{w}: sisd {} cycles, tardis {} cycles ({:+.1}%)", c("sisd"), c("tardis"),
            100.0 * (c("tardis") as f64 - c("sisd") as f64) / c("sisd") as f64);
    }
}
