//! Coherence-policy head-to-head: the same workloads under Carina SI/SD,
//! Tardis timestamp leases, and the Pyxis hybrid, on both transports.
//!
//! Runs matmul, SOR, and NAS EP under each policy on the virtual-time
//! simulator (virtual cycles) and the native backend (wall seconds), plus
//! a fence-heavy read-mostly loop and a mixed quiet+hot scenario where the
//! policies differ most. Prints one table row per (workload, policy,
//! backend) with the run's lease, invalidation, and mode ledgers, and
//! asserts every checksum is bit-identical across policies — the
//! head-to-head is only meaningful if all engines compute the same answer.
//!
//! Machine-checked headline claims (sim backend):
//! - Tardis cuts SI invalidations on read-mostly sharing; so does Pyxis.
//! - Pyxis's *steady-state* read-mostly round cost (marginal cycles per
//!   extra round, which excludes its one-time adaptation transient) is
//!   within 10% of the better pure policy.
//! - Pyxis's SOR cost is within 10% of the better pure policy (its pages
//!   stay in classification mode, so it dodges the Tardis write-heavy
//!   penalty).
//! - The mixed scenario's *total* (adaptation included) beats both pure
//!   policies outright.
//!
//! Usage: `bench_coherence` (text table to stdout; feeds EXPERIMENTS.md).

use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaSiSd, Coherence, Pyxis, Tardis};
use workloads::harness::Outcome;
use workloads::{ep, matmul, sor};

struct Row {
    workload: String,
    policy: &'static str,
    backend: &'static str,
    cycles: u64,
    wall_seconds: f64,
    checksum: f64,
    si_invalidated: u64,
    si_kept: u64,
    lease_kept: u64,
    read_misses: u64,
    mode_switches: u64,
}

fn row(workload: &str, policy: &'static str, backend: &'static str, o: &Outcome) -> Row {
    Row {
        workload: workload.to_string(),
        policy,
        backend,
        cycles: o.cycles,
        wall_seconds: o.wall_seconds,
        checksum: o.checksum,
        si_invalidated: o.coherence.si_invalidated,
        si_kept: o.coherence.si_kept,
        lease_kept: o.coherence.lease_kept,
        read_misses: o.coherence.read_misses,
        mode_switches: o.coherence.mode_to_lease + o.coherence.mode_to_sisd,
    }
}

const POLICIES: [&str; 3] = ["sisd", "tardis", "pyxis"];

/// Run `workload` under every (policy, backend) combination and pin the
/// checksums bit-identical across policies per backend.
fn run_trio<F>(workload: &str, rows: &mut Vec<Row>, run: F)
where
    F: Fn(&'static str, bool) -> Outcome, // (policy, native?) -> outcome
{
    for native in [false, true] {
        let backend = if native { "native" } else { "sim" };
        let outs: Vec<Outcome> = POLICIES.iter().map(|p| run(p, native)).collect();
        for w in outs.windows(2) {
            assert_eq!(
                w[0].checksum.to_bits(),
                w[1].checksum.to_bits(),
                "{workload}: policies disagree on the {backend} backend"
            );
        }
        for (p, o) in POLICIES.iter().zip(&outs) {
            rows.push(row(workload, p, backend, o));
        }
    }
}

fn outcome_of(report: argo::RunReport<f64>) -> Outcome {
    Outcome {
        cycles: report.cycles,
        seconds: report.seconds,
        wall_seconds: report.wall_seconds,
        checksum: report.results.iter().sum(),
        coherence: report.coherence,
        net: report.net,
        profile: report.profile,
    }
}

/// Fence-heavy read-mostly loop: one writer initializes a region, readers
/// then sweep it through repeated acquire fences while nothing changes —
/// the published-data pattern leases were designed for.
fn read_mostly<C: Coherence>(native: bool, rounds: usize) -> Outcome {
    use argo::types::GlobalF64Array;
    let cfg = ArgoConfig::small(4, 2);
    fn run<T: rma::Transport, C: Coherence>(
        m: &std::sync::Arc<ArgoMachine<T, C>>,
        rounds: usize,
    ) -> Outcome {
        let n = 16 * 1024usize;
        let arr = GlobalF64Array::alloc(m.dsm(), n);
        let report = m.run(move |ctx| {
            if ctx.tid() == 0 {
                for i in 0..n {
                    arr.set(ctx, i, i as f64);
                }
            }
            // No start_measurement here: resetting the directory would
            // erase the writer's registration and leave the pages S/NW,
            // which not even SI/SD invalidates. The interesting case is
            // S/SW: one registered writer, fences every round.
            ctx.barrier();
            let mut sum = 0.0;
            for _round in 0..rounds {
                ctx.barrier(); // SI+SD per round; the data never changes
                for i in (0..n).step_by(64) {
                    sum += arr.get(ctx, i);
                }
            }
            sum
        });
        outcome_of(report)
    }
    if native {
        run(&ArgoMachine::<rma::NativeTransport, C>::native_with_policy(cfg), rounds)
    } else {
        run(&ArgoMachine::<rma::SimTransport, C>::with_policy(cfg), rounds)
    }
}

/// Mixed sharing — the hybrid's home turf. A quiet region is written once
/// and re-read every round; a hot region is rewritten by one writer every
/// round and read back by everyone. SI/SD refetches both regions at every
/// reader fence; Tardis leases the quiet region but pays lease churn (and
/// writer self-refetches) on the hot one; Pyxis should lease the quiet
/// region, classify the hot one, and beat both.
fn mixed<C: Coherence>(native: bool, rounds: usize) -> Outcome {
    use argo::types::GlobalF64Array;
    let cfg = ArgoConfig::small(4, 2);
    fn run<T: rma::Transport, C: Coherence>(
        m: &std::sync::Arc<ArgoMachine<T, C>>,
        rounds: usize,
    ) -> Outcome {
        let quiet_n = 16 * 1024usize;
        let hot_n = 4 * 1024usize;
        let quiet = GlobalF64Array::alloc(m.dsm(), quiet_n);
        let hot = GlobalF64Array::alloc(m.dsm(), hot_n);
        let report = m.run(move |ctx| {
            if ctx.tid() == 0 {
                for i in 0..quiet_n {
                    quiet.set(ctx, i, i as f64);
                }
            }
            ctx.barrier();
            let mut sum = 0.0;
            for round in 0..rounds {
                if ctx.tid() == 0 {
                    for i in (0..hot_n).step_by(8) {
                        hot.set(ctx, i, (round * 7 + i) as f64);
                    }
                }
                ctx.barrier(); // publishes the round's hot writes
                for i in (0..quiet_n).step_by(64) {
                    sum += quiet.get(ctx, i);
                }
                for i in (0..hot_n).step_by(64) {
                    sum += hot.get(ctx, i);
                }
                ctx.barrier(); // orders this round's reads before the next writes
            }
            sum
        });
        outcome_of(report)
    }
    if native {
        run(&ArgoMachine::<rma::NativeTransport, C>::native_with_policy(cfg), rounds)
    } else {
        run(&ArgoMachine::<rma::SimTransport, C>::with_policy(cfg), rounds)
    }
}

fn main() {
    let mut rows = Vec::new();

    let p = matmul::MatmulParams { n: 96 };
    run_trio("matmul_96", &mut rows, |policy, native| {
        let cfg = ArgoConfig::small(4, 2);
        match (policy, native) {
            ("sisd", false) => matmul::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(cfg), p),
            ("tardis", false) => matmul::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(cfg), p),
            ("pyxis", false) => matmul::run_argo(&ArgoMachine::<rma::SimTransport, Pyxis>::with_policy(cfg), p),
            ("sisd", true) => matmul::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(cfg), p),
            ("tardis", true) => matmul::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(cfg), p),
            _ => matmul::run_argo(&ArgoMachine::<rma::NativeTransport, Pyxis>::native_with_policy(cfg), p),
        }
    });

    let p = sor::SorParams { n: 96, iterations: 8, omega: 1.25 };
    run_trio("sor_96x8", &mut rows, |policy, native| {
        let cfg = ArgoConfig::small(4, 2);
        match (policy, native) {
            ("sisd", false) => sor::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(cfg), p),
            ("tardis", false) => sor::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(cfg), p),
            ("pyxis", false) => sor::run_argo(&ArgoMachine::<rma::SimTransport, Pyxis>::with_policy(cfg), p),
            ("sisd", true) => sor::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(cfg), p),
            ("tardis", true) => sor::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(cfg), p),
            _ => sor::run_argo(&ArgoMachine::<rma::NativeTransport, Pyxis>::native_with_policy(cfg), p),
        }
    });

    let p = ep::EpParams { pairs: 1 << 14 };
    run_trio("ep_16k", &mut rows, |policy, native| {
        let cfg = ArgoConfig::small(4, 2);
        match (policy, native) {
            ("sisd", false) => ep::run_argo(&ArgoMachine::<rma::SimTransport, CarinaSiSd>::with_policy(cfg), p),
            ("tardis", false) => ep::run_argo(&ArgoMachine::<rma::SimTransport, Tardis>::with_policy(cfg), p),
            ("pyxis", false) => ep::run_argo(&ArgoMachine::<rma::SimTransport, Pyxis>::with_policy(cfg), p),
            ("sisd", true) => ep::run_argo(&ArgoMachine::<rma::NativeTransport, CarinaSiSd>::native_with_policy(cfg), p),
            ("tardis", true) => ep::run_argo(&ArgoMachine::<rma::NativeTransport, Tardis>::native_with_policy(cfg), p),
            _ => ep::run_argo(&ArgoMachine::<rma::NativeTransport, Pyxis>::native_with_policy(cfg), p),
        }
    });

    run_trio("read_mostly_10r", &mut rows, |policy, native| match policy {
        "sisd" => read_mostly::<CarinaSiSd>(native, 10),
        "tardis" => read_mostly::<Tardis>(native, 10),
        _ => read_mostly::<Pyxis>(native, 10),
    });

    run_trio("mixed_16r", &mut rows, |policy, native| match policy {
        "sisd" => mixed::<CarinaSiSd>(native, 16),
        "tardis" => mixed::<Tardis>(native, 16),
        _ => mixed::<Pyxis>(native, 16),
    });

    println!(
        "{:<16} {:<7} {:<7} {:>14} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "workload", "policy", "backend", "cycles", "wall_ms", "si_inval", "si_kept", "lease_kept", "rd_misses", "switches"
    );
    for r in &rows {
        println!(
            "{:<16} {:<7} {:<7} {:>14} {:>10.3} {:>10} {:>8} {:>10} {:>10} {:>8}",
            r.workload,
            r.policy,
            r.backend,
            r.cycles,
            r.wall_seconds * 1e3,
            r.si_invalidated,
            r.si_kept,
            r.lease_kept,
            r.read_misses,
            r.mode_switches
        );
    }

    let find = |w: &str, p: &str| {
        rows.iter()
            .find(|r| r.workload == w && r.policy == p && r.backend == "sim")
            .unwrap()
    };

    // The headline claims, machine-checked on every run.
    // 1. Leases must cut SI invalidations on the read-mostly pattern — and
    //    the hybrid must inherit the cut.
    let (s, t, h) = (
        find("read_mostly_10r", "sisd").si_invalidated,
        find("read_mostly_10r", "tardis").si_invalidated,
        find("read_mostly_10r", "pyxis").si_invalidated,
    );
    assert!(
        t < s,
        "tardis must avoid invalidations on read-mostly sharing (sisd {s}, tardis {t})"
    );
    assert!(
        h < s,
        "pyxis must avoid invalidations on read-mostly sharing (sisd {s}, pyxis {h})"
    );
    println!(
        "\nread-mostly SI invalidations: sisd {s} vs tardis {t} vs pyxis {h} ({:.1}x / {:.1}x fewer)",
        s as f64 / t.max(1) as f64,
        s as f64 / h.max(1) as f64
    );
    let _ = rows.last().map(|r| r.checksum); // checksums asserted in run_trio

    // Virtual-cycle comparison on the sim backend.
    for w in ["matmul_96", "sor_96x8", "ep_16k", "read_mostly_10r", "mixed_16r"] {
        let c = |p: &str| find(w, p).cycles;
        println!(
            "{w}: sisd {} cycles, tardis {} ({:+.1}%), pyxis {} ({:+.1}%)",
            c("sisd"),
            c("tardis"),
            100.0 * (c("tardis") as f64 - c("sisd") as f64) / c("sisd") as f64,
            c("pyxis"),
            100.0 * (c("pyxis") as f64 - c("sisd") as f64) / c("sisd") as f64
        );
    }

    // 2. SOR (write-heavy): the hybrid keeps every page in classification
    //    mode and must land within 10% of the better pure policy — i.e.,
    //    it strictly avoids the Tardis write-heavy penalty.
    let sor_best = find("sor_96x8", "sisd").cycles.min(find("sor_96x8", "tardis").cycles);
    let sor_pyxis = find("sor_96x8", "pyxis").cycles;
    assert!(
        sor_pyxis as f64 <= 1.10 * sor_best as f64,
        "pyxis must stay within 10% of the better policy on SOR (best {sor_best}, pyxis {sor_pyxis})"
    );

    // 3. Read-mostly steady state: the marginal cost of extra rounds once
    //    modes have settled (total(30) - total(10)) / 20, which excludes
    //    the one-time adaptation transient, must be within 10% of the
    //    better pure policy's.
    let marginal = |long: &Outcome, short: &Row| {
        (long.cycles.saturating_sub(short.cycles)) as f64 / 20.0
    };
    let long_sisd = read_mostly::<CarinaSiSd>(false, 30);
    let long_tardis = read_mostly::<Tardis>(false, 30);
    let long_pyxis = read_mostly::<Pyxis>(false, 30);
    let m_sisd = marginal(&long_sisd, find("read_mostly_10r", "sisd"));
    let m_tardis = marginal(&long_tardis, find("read_mostly_10r", "tardis"));
    let m_pyxis = marginal(&long_pyxis, find("read_mostly_10r", "pyxis"));
    println!(
        "read-mostly steady-state cycles/round: sisd {m_sisd:.0}, tardis {m_tardis:.0}, pyxis {m_pyxis:.0}"
    );
    let m_best = m_sisd.min(m_tardis);
    assert!(
        m_pyxis <= 1.10 * m_best,
        "pyxis steady-state read-mostly round must be within 10% of the better policy \
         (best {m_best:.0}, pyxis {m_pyxis:.0})"
    );

    // 4. Mixed: the hybrid's total — adaptation transient included — must
    //    beat both pure policies outright.
    let (mx_s, mx_t, mx_h) = (
        find("mixed_16r", "sisd").cycles,
        find("mixed_16r", "tardis").cycles,
        find("mixed_16r", "pyxis").cycles,
    );
    assert!(
        mx_h < mx_s && mx_h < mx_t,
        "pyxis must beat both pure policies on the mixed scenario \
         (sisd {mx_s}, tardis {mx_t}, pyxis {mx_h})"
    );
    println!(
        "mixed_16r: pyxis beats sisd by {:.1}% and tardis by {:.1}%",
        100.0 * (mx_s as f64 - mx_h as f64) / mx_s as f64,
        100.0 * (mx_t as f64 - mx_h as f64) / mx_t as f64
    );
}
