//! Extra workloads beyond the paper's six ("an initial set of benchmarks —
//! expanding rapidly", §6): red-black SOR (the TreadMarks-lineage stencil)
//! and branch-and-bound TSP (lock-structured search on HQDL).

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::{sor, tsp};

fn main() {
    let full = full_scale();
    let tpn = threads_per_node();

    let p = if full {
        sor::SorParams { n: 1024, iterations: 12, omega: 1.25 }
    } else {
        sor::SorParams { n: 256, iterations: 8, omega: 1.25 }
    };
    let seq = sor::run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);
    print_header(
        &format!("Extra: red-black SOR {0}x{0} speedup", p.n),
        &["config", "threads", "speedup"],
    );
    for n in bench::node_sweep(16) {
        let out = sor::run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(out.checksum_matches(&seq, 1e-9));
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(out.speedup_over(&seq)),
        ]);
    }
    println!("\nExpectation: near-linear until halo traffic (two boundary rows per");
    println!("chunk per half-sweep) rivals each chunk's compute.");

    let p = if full {
        tsp::TspParams { cities: 12, seed: 7 }
    } else {
        tsp::TspParams { cities: 10, seed: 7 }
    };
    let optimum = tsp::reference_best(p);
    print_header(
        &format!("Extra: TSP branch & bound ({} cities) on HQDL", p.cities),
        &["config", "threads", "Mcycles", "optimal"],
    );
    for n in bench::node_sweep(8) {
        let out = tsp::run_argo(n, tpn, p);
        assert_eq!(out.checksum, optimum as f64);
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(out.cycles as f64 / 1e6),
            cell(optimum),
        ]);
    }
    println!("\nExpectation: the shared queue/bound stay hot on the helping node;");
    println!("adding nodes helps only while expansion compute outweighs delegation.");
}
