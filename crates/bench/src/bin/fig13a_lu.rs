//! Figure 13a: SPLASH-2 LU speedup — Argo vs Pthreads (single machine).
//!
//! Expected shape (paper): heavy data migration gives Argo significant
//! overhead, but multiple nodes still beat single-machine Pthreads, with
//! gains up to ~8 nodes before flattening.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::lu::{run_argo, LuParams};

fn main() {
    let full = full_scale();
    let p = if full {
        LuParams { n: 1024, block: 16 }
    } else {
        LuParams { n: 320, block: 16 }
    };
    let tpn = threads_per_node();
    let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);

    print_header(
        "Figure 13a: SPLASH-2 LU speedup over sequential",
        &["config", "threads", "speedup"],
    );
    let mut pthreads_ts = vec![2, 4, 8];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
        assert!(out.checksum_matches(&seq, 1e-6), "pthreads checksum diverged");
        print_row(&[cell("Pthreads"), cell(t), f2(out.speedup_over(&seq))]);
    }
    for n in bench::node_sweep(32) {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(out.checksum_matches(&seq, 1e-6), "argo checksum diverged");
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(out.speedup_over(&seq)),
        ]);
    }
    println!("\nShape check (paper): Argo multi-node beats single-machine Pthreads");
    println!("despite migration overhead; gains continue to ~8 nodes.");
}
