//! Figure 10: number of writebacks as a function of write-buffer size.
//!
//! The companion of Figure 9: execution time correlates with the number of
//! writebacks, which drops steeply as the buffer grows (hot pages coalesce
//! more writes before being downgraded) and levels off once the working
//! set of dirty pages fits.

use bench::{cell, full_scale, print_header, print_row, six, threads_per_node};
use carina::CarinaConfig;

fn sizes(full: bool) -> Vec<usize> {
    if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        vec![1, 2, 4, 8, 32, 128, 1024, 8192]
    }
}

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    let szs = sizes(full);
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = szs.iter().map(|s| s.to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    print_header("Figure 10: writebacks vs write-buffer pages", &cols);
    for name in six::NAMES {
        let mut row = vec![cell(name)];
        let mut prev = u64::MAX;
        for &wb in &szs {
            let cfg = CarinaConfig::with_write_buffer(wb);
            let out = six::run(name, nodes, tpn, cfg, full);
            row.push(out.coherence.writebacks.to_string());
            // Monotonicity sanity: writebacks should not grow with size.
            if out.coherence.writebacks > prev {
                // (Not an error: fence-order noise can wiggle small counts.)
            }
            prev = out.coherence.writebacks;
        }
        print_row(&row);
    }
    println!("\nShape check (paper): writeback counts fall steeply with buffer size and");
    println!("plateau once each benchmark's dirty working set fits in the buffer.");
}
