//! Figure 13d: matrix multiply speedup for two input sizes — Argo vs
//! Pthreads vs MPI.
//!
//! Expected shape (paper, 2000² and 5000²; here scaled down): the MPI
//! port is faster on one node (optimized kernel), but for the *small*
//! input it cannot keep the advantage beyond one node (broadcast/gather
//! overhead), while Argo scales to ~8 nodes. For the large input both
//! scale, MPI keeping its constant-factor lead.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::matmul::{run_argo, run_mpi_variant, MatmulParams};

fn main() {
    let full = full_scale();
    let (small_n, large_n) = if full { (512, 1024) } else { (128, 256) };
    let tpn = threads_per_node();

    for (label, n) in [("small", small_n), ("large", large_n)] {
        let p = MatmulParams { n };
        let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);
        print_header(
            &format!("Figure 13d ({label} input {n}x{n}): speedup over sequential"),
            &["config", "threads", "speedup"],
        );
        let mut pthreads_ts = vec![4];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
            let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
            assert!(out.checksum_matches(&seq, 1e-6));
            print_row(&[cell("Pthreads"), cell(t), f2(out.speedup_over(&seq))]);
        }
        for nd in bench::node_sweep(32) {
            let argo = run_argo(&ArgoMachine::new(ArgoConfig::small(nd, tpn)), p);
            assert!(argo.checksum_matches(&seq, 1e-6));
            let mpi = run_mpi_variant(nd, tpn, p);
            assert!(mpi.checksum_matches(&seq, 1e-6));
            print_row(&[
                cell(format!("Argo {nd}n")),
                cell(nd * tpn),
                f2(argo.speedup_over(&seq)),
            ]);
            print_row(&[
                cell(format!("MPI {nd}n")),
                cell(nd * tpn),
                f2(mpi.speedup_over(&seq)),
            ]);
        }
    }
    println!("\nShape check (paper): MPI wins at 1 node (optimized kernel); for the");
    println!("small input its lead evaporates with node count while Argo scales;");
    println!("for the large input both scale and the initial gap persists.");
}
