//! Ablation: prefetch line size (paper §3.6.2).
//!
//! Argo fetches a configurable "cache line" of consecutive pages on every
//! miss, trading bandwidth for latency. Sweep the line size for the
//! streaming-friendly benchmarks (Blackscholes, MM) and the pointer-chasing
//! one (CG) to show where prefetching helps and where it wastes bandwidth.

use bench::{cell, f3, full_scale, print_header, print_row, six, threads_per_node};
use carina::CarinaConfig;
use mem::CacheConfig;

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    let lines = [1usize, 2, 4, 8, 16];
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = lines.iter().map(|l| format!("{l}p")).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    print_header("Ablation: exec time vs prefetch line size (norm. to 1 page)", &cols);
    for name in ["Blackscholes", "MM", "CG", "Nbody"] {
        let mut base_cycles = 0u64;
        let mut row = vec![cell(name)];
        for (i, &ppl) in lines.iter().enumerate() {
            let cfg = CarinaConfig {
                cache: CacheConfig::new(8192 / ppl, ppl),
                ..Default::default()
            };
            let out = six::run(name, nodes, tpn, cfg, full);
            if i == 0 {
                base_cycles = out.cycles;
            }
            row.push(f3(out.cycles as f64 / base_cycles as f64));
        }
        print_row(&row);
    }
    println!("\nExpectation: streaming benchmarks gain from longer lines (latency");
    println!("amortized); irregular access (CG) gains less or regresses (wasted");
    println!("transfers and conflict evictions).");
}
