//! Figure 13f: NAS CG (CLASS C in the paper) — Argo vs OpenMP vs UPC.
//!
//! Expected shape (paper): the optimized UPC implementation starts with a
//! significant single-node advantage, but stops scaling at 8 nodes (its
//! per-rank bulk pulls of the whole `p` vector saturate the home NICs),
//! while Argo — whose page caches pull each page once per *node* and keep
//! read-mostly pages across barriers — continues to 32 nodes.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::cg::{run_argo, run_pgas, CgParams};

fn main() {
    let full = full_scale();
    let p = if full {
        CgParams { n: 16_384, nnz_per_row: 16, iterations: 12 }
    } else {
        CgParams { n: 4_096, nnz_per_row: 8, iterations: 6 }
    };
    let tpn = threads_per_node();
    let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);

    print_header(
        "Figure 13f: NAS CG speedup over sequential",
        &["config", "threads", "speedup"],
    );
    let mut pthreads_ts = vec![4];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
        assert!(out.checksum_matches(&seq, 1e-6));
        print_row(&[cell("OpenMP"), cell(t), f2(out.speedup_over(&seq))]);
    }
    for n in bench::node_sweep(32) {
        let argo = run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(argo.checksum_matches(&seq, 1e-6));
        let upc = run_pgas(n, tpn, p);
        assert!(upc.checksum_matches(&seq, 1e-6));
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(argo.speedup_over(&seq)),
        ]);
        print_row(&[
            cell(format!("UPC {n}n")),
            cell(n * tpn),
            f2(upc.speedup_over(&seq)),
        ]);
    }
    println!("\nShape check (paper): UPC ahead at 1 node (optimized kernel), flattens");
    println!("by ~8 nodes; Argo's per-node caching lets it keep scaling past that.");
}
