//! Figure 9: execution time as a function of write-buffer size.
//!
//! Expected shape (paper): below a benchmark-specific critical size,
//! performance is "devastated" (every write fault forces an immediate
//! downgrade of a still-hot page, which immediately refaults); above it,
//! time is flat with a slight rise at very large buffers (sync-point
//! flush latency).

use bench::{cell, full_scale, print_header, print_row, six, threads_per_node};
use carina::CarinaConfig;

fn sizes(full: bool) -> Vec<usize> {
    if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        vec![1, 2, 4, 8, 32, 128, 1024, 8192]
    }
}

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    let szs = sizes(full);
    let mut cols: Vec<&str> = vec!["benchmark"];
    let labels: Vec<String> = szs.iter().map(|s| s.to_string()).collect();
    cols.extend(labels.iter().map(|s| s.as_str()));
    print_header("Figure 9: execution time (Mcycles) vs write-buffer pages", &cols);
    for name in six::NAMES {
        let mut row = vec![cell(name)];
        for &wb in &szs {
            let cfg = CarinaConfig::with_write_buffer(wb);
            let out = six::run(name, nodes, tpn, cfg, full);
            row.push(format!("{:.1}", out.cycles as f64 / 1e6));
        }
        print_row(&row);
    }
    println!("\nShape check (paper): time explodes below a per-benchmark critical size,");
    println!("then flattens; very large buffers cost slightly more at sync points.");
}
