//! Figure 1: technology trends for network bandwidth/latency and DRAM
//! latency, normalized to CPU cycles — the paper's motivation data.
//!
//! This table is static (adapted by the paper from Ramesh's thesis); we
//! reprint it and derive the observation the paper draws from it: the
//! cycles-per-KB metric reversed its trend around 2000, turning network
//! bandwidth from a deterrent into an incentive for DSM.

use bench::{cell, print_header, print_row};

struct Year {
    year: u32,
    cpu_mhz: u32,
    dram_lat: u32,
    net_lat: u32,
    cycles_per_kb: u32,
}

const DATA: &[Year] = &[
    Year { year: 1992, cpu_mhz: 200, dram_lat: 16, net_lat: 40_000, cycles_per_kb: 1092 },
    Year { year: 1994, cpu_mhz: 500, dram_lat: 35, net_lat: 50_000, cycles_per_kb: 2731 },
    Year { year: 1997, cpu_mhz: 1000, dram_lat: 70, net_lat: 30_000, cycles_per_kb: 3901 },
    Year { year: 2000, cpu_mhz: 2400, dram_lat: 168, net_lat: 24_000, cycles_per_kb: 2313 },
    Year { year: 2005, cpu_mhz: 3200, dram_lat: 224, net_lat: 4_160, cycles_per_kb: 1311 },
    Year { year: 2007, cpu_mhz: 3200, dram_lat: 192, net_lat: 4_160, cycles_per_kb: 655 },
    Year { year: 2009, cpu_mhz: 3300, dram_lat: 165, net_lat: 3_300, cycles_per_kb: 211 },
    Year { year: 2011, cpu_mhz: 3400, dram_lat: 170, net_lat: 1_700, cycles_per_kb: 111 },
];

fn main() {
    print_header(
        "Figure 1: trends normalized to CPU cycles",
        &["year", "CPU MHz", "DRAM lat", "net lat", "cyc/KB", "net/DRAM"],
    );
    for y in DATA {
        print_row(&[
            cell(y.year),
            cell(y.cpu_mhz),
            cell(y.dram_lat),
            cell(y.net_lat),
            cell(y.cycles_per_kb),
            format!("{:.0}x", y.net_lat as f64 / y.dram_lat as f64),
        ]);
    }
    let peak = DATA.iter().max_by_key(|y| y.cycles_per_kb).expect("data");
    let last = DATA.last().expect("data");
    println!(
        "\nBandwidth trend reversal: cycles/KB peaked at {} ({}), down to {} by {}.",
        peak.cycles_per_kb, peak.year, last.cycles_per_kb, last.year
    );
    println!(
        "Network latency is now ~{:.0}x DRAM latency (was ~{:.0}x in {}):",
        last.net_lat as f64 / last.dram_lat as f64,
        DATA[0].net_lat as f64 / DATA[0].dram_lat as f64,
        DATA[0].year
    );
    println!("=> trade bandwidth for latency; eliminate message handlers; keep dependent");
    println!("   computation (critical sections) from migrating — the Argo design rules.");
    println!("\nThese 2011 constants are the simulator's default CostModel::paper_2011().");
}
