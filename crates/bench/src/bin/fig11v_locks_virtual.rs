//! Figure 11 (virtual-time companion): single-node lock scaling measured
//! on the simulator's clock rather than the host's.
//!
//! The real-time harness (`fig11_locks_single_node`) is the faithful
//! reproduction but needs as many host cores as benchmark threads. This
//! companion models the same microbenchmark on a one-node simulated
//! machine, so the *shape* — delegation on top, cohort next, a plain
//! mutex saturating early — is visible on any host.
//!
//! Lock models on one node: QD = `Hqdl` (delegation, batched, detached
//! inserts); Cohort = `DsmCohortLock` (local tier + fairness-bounded
//! passes); Mutex = bare `DsmGlobalLock` with per-section fences and a
//! cache-line-bouncing hand-off (every acquire pays an inter-socket hop —
//! the non-NUMA-aware behaviour that makes Pthreads mutexes flatten).

use argo::{ArgoConfig, ArgoMachine};
use bench::prioq::{LocalWork, WORK_UNIT_CYCLES};
use bench::{cell, f2, full_scale, print_header, print_row};
use std::sync::Arc;
use vela::{DsmCohortLock, DsmGlobalLock, DsmPairingHeap, Hqdl};

const HEAP_CAP: u64 = 1 << 16;
const PREFILL: u64 = 512;

fn machine(threads: usize) -> Arc<ArgoMachine> {
    let mut cfg = ArgoConfig::small(1, threads);
    cfg.bytes_per_node = 16 << 20;
    ArgoMachine::new(cfg)
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Qd,
    Cohort,
    Mutex,
}

fn run(kind: Kind, threads: usize, ops: usize) -> f64 {
    let m = machine(threads);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(HEAP_CAP), 8)
        .expect("mem");
    let qd = Hqdl::new(dsm.clone(), 1024);
    let cohort = DsmCohortLock::new(dsm.clone(), 48);
    let mutex = DsmGlobalLock::new(simnet::NodeId(0));
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, HEAP_CAP);
            for k in 0..PREFILL {
                h.insert(&d0, &mut ctx.thread, k.wrapping_mul(2654435761));
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            w.run(48);
            ctx.thread.compute(48 * WORK_UNIT_CYCLES);
            let insert = w.coin();
            let key = w.key();
            let dsm = d0.clone();
            match kind {
                Kind::Qd => {
                    if insert {
                        let _ = qd.delegate(&mut ctx.thread, move |ht| heap.insert(&dsm, ht, key));
                    } else {
                        qd.delegate_wait(&mut ctx.thread, move |ht| {
                            heap.extract_min(&dsm, ht);
                        });
                    }
                }
                Kind::Cohort => {
                    cohort.with(&mut ctx.thread, |ht| {
                        if insert {
                            heap.insert(&d0, ht, key);
                        } else {
                            heap.extract_min(&d0, ht);
                        }
                    });
                }
                Kind::Mutex => {
                    mutex.acquire(&mut ctx.thread);
                    // A vanilla mutex bounces its cache line to every
                    // acquirer regardless of placement.
                    ctx.thread
                        .compute(ctx.thread.net().cost().intersocket_latency);
                    if insert {
                        heap.insert(&d0, &mut ctx.thread, key);
                    } else {
                        heap.extract_min(&d0, &mut ctx.thread);
                    }
                    mutex.release(&mut ctx.thread);
                }
            }
        }
        if kind == Kind::Qd {
            qd.delegate_wait(&mut ctx.thread, |_| {});
        }
        0.0
    });
    (ops * threads) as f64 / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

fn main() {
    let full = full_scale();
    let ops = if full { 400 } else { 150 };
    let thread_counts: &[usize] = if full {
        &[1, 2, 4, 6, 8, 10, 12, 14, 16]
    } else {
        &[1, 2, 4, 8]
    };
    print_header(
        "Figure 11 (virtual): single-node lock scaling (ops/us)",
        &["threads", "QD", "Cohort", "Mutex"],
    );
    for &t in thread_counts {
        print_row(&[
            cell(t),
            f2(run(Kind::Qd, t, ops)),
            f2(run(Kind::Cohort, t, ops)),
            f2(run(Kind::Mutex, t, ops)),
        ]);
    }
    println!("\nShape check (paper): all rise until the lock saturates; QD sustains");
    println!("the highest plateau (batched execution on one core), Cohort second,");
    println!("the location-blind mutex lowest.");
}
