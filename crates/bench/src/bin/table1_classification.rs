//! Table 1: the three classification schemes and which pages self-
//! invalidate (SI) / self-downgrade (SD) under each — printed directly
//! from the protocol's decision logic, so the table *is* the code.

use bench::{cell, print_header, print_row};
use carina::classification::{node_bit, ClassificationMode, DirView};

fn views() -> Vec<(&'static str, DirView, u16)> {
    // (label, directory view, observing node)
    vec![
        ("P (mine)", DirView { readers: node_bit(0), writers: node_bit(0) }, 0),
        ("S, NW", DirView { readers: node_bit(0) | node_bit(1), writers: 0 }, 0),
        (
            "S, SW (me)",
            DirView { readers: node_bit(0) | node_bit(1), writers: node_bit(0) },
            0,
        ),
        (
            "S, SW (other)",
            DirView { readers: node_bit(0) | node_bit(1), writers: node_bit(1) },
            0,
        ),
        (
            "S, MW",
            DirView {
                readers: node_bit(0) | node_bit(1),
                writers: node_bit(0) | node_bit(1),
            },
            0,
        ),
    ]
}

fn tick(b: bool) -> &'static str {
    if b {
        "SI/SD"
    } else {
        "-"
    }
}

fn main() {
    for (mode, name) in [
        (ClassificationMode::AllShared, "S: no classification"),
        (ClassificationMode::PsNaive, "P/S: simple classification (naive)"),
        (ClassificationMode::Ps3, "P/S3: full P/S + writer classification"),
    ] {
        print_header(name, &["state", "SI", "SD"]);
        for (label, view, me) in views() {
            print_row(&[
                cell(label),
                cell(tick(view.must_self_invalidate(mode, me)).replace("SI/SD", "SI")),
                cell(tick(view.must_self_downgrade(mode, me)).replace("SI/SD", "SD")),
            ]);
        }
    }
    println!("\nNotes (paper Table 1):");
    println!("- P/S3 self-downgrades private pages (\"SD to avoid P->S forced downgrade\").");
    println!("- In P/S3 the single writer of a shared page does not SI; other nodes do.");
    println!("- Naive P/S exempts private pages from SD and pays with checkpointing.");
}
