//! Figure 7: achievable bandwidth of an Argo cache-line read vs raw
//! one-sided communication, as a function of transfer size.
//!
//! The paper plots MB/s of reading a "line" of consecutive pages through
//! Argo's cache against OpenMPI passive one-sided transfers of the same
//! size: Argo tracks the raw transfer rate closely, both asymptoting to
//! the wire bandwidth as the per-message latency amortizes.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, print_header, print_row};
use carina::CarinaConfig;
use mem::{CacheConfig, PAGE_BYTES};
use simnet::{CostModel, NodeId};

/// MB/s for a given virtual duration and byte count.
fn mbps(bytes: u64, cycles: u64, cost: &CostModel) -> f64 {
    bytes as f64 / cost.cycles_to_secs(cycles) / 1e6
}

fn main() {
    let cost = CostModel::paper_2011();
    print_header(
        "Figure 7: bandwidth vs transfer size",
        &["bytes", "Argo MB/s", "RMA MB/s", "ratio"],
    );
    // Sweep line sizes from 1 page to 128 pages (4 KiB .. 512 KiB).
    for pages_per_line in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let bytes = pages_per_line as u64 * PAGE_BYTES;

        // Raw one-sided read of the same size (the MPI-RMA line).
        let topo = simnet::ClusterTopology::tiny(2);
        let net = simnet::Interconnect::new(topo, cost);
        let t0 = net.rdma_read(topo.loc(NodeId(0), 0), NodeId(1), 0, bytes);
        let rma = mbps(bytes, t0.initiator_done, &cost);

        // Argo cache-line read: cold miss on a line of `pages_per_line`
        // pages, all homed on the remote node of a 2-node cluster.
        let mut cfg = ArgoConfig::small(2, 1);
        cfg.carina = CarinaConfig {
            cache: CacheConfig::new(64, pages_per_line),
            ..CarinaConfig::default()
        };
        cfg.bytes_per_node = 64 << 20;
        let machine = ArgoMachine::new(cfg);
        // Touch `lines_to_read` distinct lines; average the cost.
        let lines_to_read = 32usize;
        let report = machine.run(move |ctx| {
            ctx.start_measurement(); // collective
            if ctx.tid() != 0 {
                return 0.0;
            }
            let mut sink = 0u64;
            for l in 1..=lines_to_read {
                // Demand one *remote* page per line (node 0 homes even
                // pages, so pick an odd page inside line `l`); the fill
                // brings the whole line.
                let base = (l * pages_per_line) as u64;
                let page = if pages_per_line == 1 {
                    // Lines are single pages; only odd lines are remote.
                    2 * base + 1
                } else if base % 2 == 1 {
                    base
                } else {
                    base + 1
                };
                sink ^= ctx.read_u64(mem::GlobalAddr(page * PAGE_BYTES));
            }
            sink as f64
        });
        // Per line: half the pages are remote (interleaving) — count the
        // actually transferred bytes from the stats.
        let transferred = report.net.bytes_read;
        let argo = mbps(transferred, report.cycles, &cost);
        print_row(&[
            cell(bytes),
            f2(argo),
            f2(rma),
            f2(argo / rma),
        ]);
    }
    println!("\nShape check (paper): both curves rise with transfer size and converge;");
    println!("Argo tracks the raw one-sided rate, slightly below it at small sizes");
    println!("(per-miss protocol overhead), approaching it at large line sizes.");
}
