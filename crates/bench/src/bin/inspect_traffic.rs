//! Traffic inspector: per-node network breakdown for one workload —
//! the diagnosis tool behind several of the paper's observations.
//!
//! Two demonstrations:
//! 1. Blackscholes on Argo vs its MPI port: Argo's traffic is spread
//!    evenly across homes, while the MPI port funnels everything through
//!    rank 0 — the hotspot that stops it from scaling (Figure 13c).
//! 2. Argo with interleaved vs blocked data distribution: blocked
//!    placement eliminates most cross-node read traffic.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, full_scale, print_header, print_row, threads_per_node};
use workloads::blackscholes::{run_argo_with, run_mpi_variant, BsParams};

fn kb(b: u64) -> String {
    format!("{} KiB", b >> 10)
}

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    let p = BsParams {
        options: if full { 131_072 } else { 16_384 },
        iterations: 3,
    };

    // Argo, interleaved homes.
    let m = ArgoMachine::new(ArgoConfig::small(nodes, tpn));
    let _ = run_argo_with(&m, p, false);
    print_header(
        "Blackscholes on Argo (interleaved homes): per-node traffic",
        &["node", "bytes in", "bytes out", "ops in"],
    );
    for (n, s) in m.net().per_node_stats().iter().enumerate() {
        print_row(&[cell(n), kb(s.bytes_in), kb(s.bytes_out), cell(s.ops_in)]);
    }

    // Argo, blocked per-allocation homes.
    let m = ArgoMachine::new(ArgoConfig::small(nodes, tpn));
    let _ = run_argo_with(&m, p, true);
    print_header(
        "Blackscholes on Argo (blocked allocation): per-node traffic",
        &["node", "bytes in", "bytes out", "ops in"],
    );
    for (n, s) in m.net().per_node_stats().iter().enumerate() {
        print_row(&[cell(n), kb(s.bytes_in), kb(s.bytes_out), cell(s.ops_in)]);
    }

    // The MPI port: rank 0 is the funnel. (run_mpi_variant constructs its
    // own world; rerun it here with a fresh net we can inspect — the
    // harness returns only aggregates, so we reproduce its pattern via the
    // returned snapshot plus a statement of the structural cause.)
    let out = run_mpi_variant(nodes, tpn, p);
    print_header(
        "Blackscholes MPI port: aggregate traffic (all through rank 0)",
        &["", "messages", "MiB moved", "handlers"],
    );
    print_row(&[
        cell(""),
        cell(out.net.messages),
        cell(out.net.msg_bytes >> 20),
        cell(out.net.handler_invocations),
    ]);
    println!("\nEvery scatter/gather pairs rank 0 with each other rank: its NIC");
    println!("carries ~all {} MiB while Argo spreads the same bytes across", out.net.msg_bytes >> 20);
    println!("{} home NICs — the structural reason Figure 13c's MPI line flattens.", nodes);
}
