//! Ablation: what if the cohort baseline also got hierarchical fence
//! placement?
//!
//! HQDL's edge over the cohort lock in Figure 12 has two components:
//! (1) hierarchical fencing — one SI/SD per node tenure instead of per
//! critical section, and (2) delegation — no per-section lock hand-offs
//! and the protected data stays hot in one executing context. This
//! ablation isolates (1) by running the cohort lock with per-section
//! fences (vanilla Argo lock semantics, the paper's baseline) and with
//! hierarchical fences.

use argo::{ArgoConfig, ArgoMachine};
use bench::prioq::{LocalWork, WORK_UNIT_CYCLES};
use bench::{cell, f2, full_scale, print_header, print_row};
use vela::{DsmCohortLock, DsmPairingHeap, FencePlacement, Hqdl};

const HEAP_CAPACITY: u64 = 1 << 16;

fn run_cohort(nodes: usize, tpn: usize, ops: usize, fencing: FencePlacement) -> f64 {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.bytes_per_node = 16 << 20;
    let m = ArgoMachine::new(cfg);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(HEAP_CAPACITY), 8)
        .expect("global memory");
    let lock = DsmCohortLock::with_fencing(dsm.clone(), 48, fencing);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, HEAP_CAPACITY);
            for k in 0..1024 {
                h.insert(&d0, &mut ctx.thread, k * 11);
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            w.run(48);
            ctx.thread.compute(48 * WORK_UNIT_CYCLES);
            if w.coin() {
                let k = w.key();
                lock.with(&mut ctx.thread, |ht| heap.insert(&d0, ht, k));
            } else {
                lock.with(&mut ctx.thread, |ht| {
                    heap.extract_min(&d0, ht);
                });
            }
        }
        0.0
    });
    (ops * nodes * tpn) as f64 / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

fn run_hqdl(nodes: usize, tpn: usize, ops: usize) -> f64 {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.bytes_per_node = 16 << 20;
    let m = ArgoMachine::new(cfg);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(HEAP_CAPACITY), 8)
        .expect("global memory");
    let lock = Hqdl::new(dsm.clone(), 1024);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, HEAP_CAPACITY);
            for k in 0..1024 {
                h.insert(&d0, &mut ctx.thread, k * 11);
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            w.run(48);
            ctx.thread.compute(48 * WORK_UNIT_CYCLES);
            let dsm = d0.clone();
            if w.coin() {
                let k = w.key();
                let _ = lock.delegate(&mut ctx.thread, move |ht| heap.insert(&dsm, ht, k));
            } else {
                lock.delegate_wait(&mut ctx.thread, move |ht| {
                    heap.extract_min(&dsm, ht);
                });
            }
        }
        lock.delegate_wait(&mut ctx.thread, |_| {});
        0.0
    });
    (ops * nodes * tpn) as f64 / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

fn main() {
    let full = full_scale();
    let (tpn, ops) = if full { (15, 300) } else { (4, 120) };
    let nodes_list: &[usize] = if full { &[1, 2, 4, 8, 16] } else { &[1, 2, 4] };
    print_header(
        "Ablation: fence placement in the cohort lock (ops/us)",
        &["nodes", "cohort/sect", "cohort/hier", "HQDL"],
    );
    for &n in nodes_list {
        let per_section = run_cohort(n, tpn, ops, FencePlacement::PerSection);
        let hier = run_cohort(n, tpn, ops, FencePlacement::Hierarchical);
        let hqdl = run_hqdl(n, tpn, ops);
        print_row(&[cell(n), f2(per_section), f2(hier), f2(hqdl)]);
    }
    println!("\nExpectation: hierarchical fencing recovers part of HQDL's edge; the");
    println!("rest comes from delegation itself (no per-section hand-offs, data hot");
    println!("on the helper). Paper Figure 12 corresponds to the per-section column.");
}
