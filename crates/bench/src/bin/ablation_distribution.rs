//! Ablation: data distribution policy (paper §3 future work).
//!
//! The prototype interleaves pages round-robin — "a simplistic approach";
//! the paper blames Figure 13c's speedup wiggles on "the overly simplistic
//! data distribution and its negative interaction with Argo's prefetching".
//! This ablation allocates each option array with block-distributed homes
//! (`Dsm::alloc_blocked` — thread chunks land on their own node), against
//! the interleaved default. CG/Nbody run interleaved in both columns
//! (their access patterns are all-to-all; distribution can't help) as
//! controls.

use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use argo::{ArgoConfig, ArgoMachine};
use workloads::{blackscholes, cg, nbody};

fn run(blocked: bool, which: &str, nodes: usize, tpn: usize, full: bool) -> (u64, u64) {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.bytes_per_node = 32 << 20;
    let m = ArgoMachine::new(cfg);
    let s = |r: usize, f: usize| if full { f } else { r };
    let out = match which {
        "Blackscholes" => blackscholes::run_argo_with(
            &m,
            blackscholes::BsParams {
                options: s(16_384, 131_072),
                iterations: s(3, 5),
            },
            blocked,
        ),
        "CG" => { let _ = blocked; cg::run_argo(
            &m,
            cg::CgParams {
                n: s(4_096, 16_384),
                nnz_per_row: s(8, 16),
                iterations: s(4, 10),
            },
        ) },
        "Nbody" => nbody::run_argo(
            &m,
            nbody::NbodyParams {
                bodies: s(1_536, 8_192),
                steps: 3,
            },
        ),
        _ => unreachable!(),
    };
    (out.cycles, out.net.bytes_read)
}

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    print_header(
        "Ablation: interleaved vs blocked data distribution (4 nodes)",
        &["benchmark", "interleaved", "blocked", "speedup", "traffic x"],
    );
    for which in ["Blackscholes", "CG", "Nbody"] {
        let (ci, ti) = run(false, which, nodes, tpn, full);
        let (cb, tb) = run(true, which, nodes, tpn, full);
        print_row(&[
            cell(which),
            f2(ci as f64 / 1e6),
            f2(cb as f64 / 1e6),
            f2(ci as f64 / cb as f64),
            f2(tb as f64 / ti.max(1) as f64),
        ]);
    }
    println!("\nExpectation: chunked workloads (Blackscholes) gain — their chunks land");
    println!("on their own nodes and read traffic drops. All-to-all access patterns");
    println!("(Nbody positions, CG's p vector) gain little: every node reads");
    println!("everything regardless of placement.");
}
