//! Figure 12: scaling of lock-synchronized code over the DSM — Argo's
//! hierarchical queue delegation (HQDL) vs a distributed Cohort lock.
//!
//! Expected shape (paper): the workload is dominated by critical sections
//! and cannot scale; HQDL drops ~40 % going from one node to two, then
//! holds nearly flat out to hundreds of threads, staying well above the
//! Cohort lock (which pays per-section hand-offs and coarser fencing).
//!
//! Throughput is ops per **virtual** microsecond: the simulated cluster's
//! clock, with the heap resident in global memory so every critical
//! section's data migrates through the coherence layer.

use argo::{ArgoConfig, ArgoMachine};
use bench::prioq::{LocalWork, WORK_UNIT_CYCLES};
use bench::{cell, f2, full_scale, print_header, print_row};
use std::sync::Arc;
use vela::{DsmCohortLock, DsmPairingHeap, Hqdl};

const WORK_UNITS: usize = 48; // the paper's setting
const HEAP_CAPACITY: u64 = 1 << 18;
const PREFILL: u64 = 4096;
/// Ops each thread performs per run (fixed-work rather than fixed-time so
/// the virtual-time measurement is deterministic).
fn ops_per_thread(full: bool) -> usize {
    if full {
        400
    } else {
        150
    }
}

fn machine(nodes: usize, tpn: usize) -> Arc<ArgoMachine> {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.bytes_per_node = (24 << 20) / nodes.max(1) as u64 + (8 << 20);
    ArgoMachine::new(cfg)
}

/// ops/virtual-µs with HQDL (inserts detached, extracts waited).
fn run_hqdl(nodes: usize, tpn: usize, full: bool) -> f64 {
    let m = machine(nodes, tpn);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(HEAP_CAPACITY), 8)
        .expect("global memory");
    let lock = Hqdl::new(dsm.clone(), 1024);
    let ops = ops_per_thread(full);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, HEAP_CAPACITY);
            for k in 0..PREFILL {
                h.insert(&d0, &mut ctx.thread, k.wrapping_mul(0x9E37_79B9));
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            let sink = w.run(WORK_UNITS);
            std::hint::black_box(sink);
            ctx.thread.compute(WORK_UNITS as u64 * WORK_UNIT_CYCLES);
            let dsm = d0.clone();
            if w.coin() {
                let k = w.key();
                // Insert: delegate and detach.
                let _ = lock.delegate(&mut ctx.thread, move |ht| {
                    heap.insert(&dsm, ht, k);
                });
            } else {
                // Extract: wait for the result.
                let _ = lock.delegate_wait(&mut ctx.thread, move |ht| {
                    heap.extract_min(&dsm, ht)
                });
            }
        }
        // Flush our node's outstanding delegations.
        lock.delegate_wait(&mut ctx.thread, |_| {});
        0.0
    });
    let total_ops = (ops * nodes * tpn) as f64;
    total_ops / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

/// ops/virtual-µs with the distributed Cohort lock (each thread executes
/// its own critical section).
fn run_cohort(nodes: usize, tpn: usize, full: bool) -> f64 {
    let m = machine(nodes, tpn);
    let dsm = m.dsm().clone();
    let base = dsm
        .allocator()
        .alloc(DsmPairingHeap::bytes_needed(HEAP_CAPACITY), 8)
        .expect("global memory");
    let lock = DsmCohortLock::new(dsm.clone(), 48);
    let ops = ops_per_thread(full);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, HEAP_CAPACITY);
            for k in 0..PREFILL {
                h.insert(&d0, &mut ctx.thread, k.wrapping_mul(0x9E37_79B9));
            }
        }
        ctx.start_measurement();
        let mut w = LocalWork::new(ctx.tid() as u64 + 1);
        let heap = DsmPairingHeap::attach(base);
        for _ in 0..ops {
            let sink = w.run(WORK_UNITS);
            std::hint::black_box(sink);
            ctx.thread.compute(WORK_UNITS as u64 * WORK_UNIT_CYCLES);
            if w.coin() {
                let k = w.key();
                lock.with(&mut ctx.thread, |ht| heap.insert(&d0, ht, k));
            } else {
                lock.with(&mut ctx.thread, |ht| {
                    heap.extract_min(&d0, ht);
                });
            }
        }
        0.0
    });
    let total_ops = (ops * nodes * tpn) as f64;
    total_ops / (report.cycles as f64 / m.config().cost.cpu_ghz / 1e3)
}

fn main() {
    let full = full_scale();
    let tpn = if full { 15 } else { 4 };
    let node_counts: &[usize] = if full {
        &[1, 2, 4, 8, 16, 32]
    } else {
        &[1, 2, 4, 8]
    };
    print_header(
        "Figure 12: DSM lock scaling (ops/us, virtual time)",
        &["nodes", "threads", "Argo HQDL", "Cohort"],
    );
    let mut hqdl_series = Vec::new();
    for &n in node_counts {
        let h = run_hqdl(n, tpn, full);
        let c = run_cohort(n, tpn, full);
        hqdl_series.push(h);
        print_row(&[cell(n), cell(n * tpn), f2(h), f2(c)]);
    }
    println!("\nShape check (paper): HQDL drops ~40% from 1 to 2 nodes, then stays");
    println!("stable across node counts and above the distributed Cohort lock.");
    if hqdl_series.len() >= 3 {
        let drop = 1.0 - hqdl_series[1] / hqdl_series[0];
        println!("Measured 1->2 node drop: {:.0}%", drop * 100.0);
    }
}
