//! Figure 13b: N-body speedup — Argo vs Pthreads vs MPI.
//!
//! Expected shape (paper): barrier cost is barely noticeable at large
//! problem sizes; Argo scales to 32 nodes (512 threads) and exceeds the
//! MPI port.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::nbody::{run_argo, run_mpi_variant, NbodyParams};

fn main() {
    let full = full_scale();
    let p = if full {
        NbodyParams { bodies: 8192, steps: 4 }
    } else {
        NbodyParams { bodies: 1536, steps: 3 }
    };
    let tpn = threads_per_node();
    let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);

    print_header(
        "Figure 13b: N-body speedup over sequential",
        &["config", "threads", "speedup"],
    );
    let mut pthreads_ts = vec![2, 4, 8];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
        assert!(out.checksum_matches(&seq, 1e-6));
        print_row(&[cell("Pthreads"), cell(t), f2(out.speedup_over(&seq))]);
    }
    for n in bench::node_sweep(32) {
        let argo = run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(argo.checksum_matches(&seq, 1e-6));
        let mpi = run_mpi_variant(n, tpn, p);
        assert!(mpi.checksum_matches(&seq, 1e-6));
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(argo.speedup_over(&seq)),
        ]);
        print_row(&[
            cell(format!("MPI {n}n")),
            cell(n * tpn),
            f2(mpi.speedup_over(&seq)),
        ]);
    }
    println!("\nShape check (paper): Argo keeps scaling to the largest node count and");
    println!("meets/exceeds MPI (whose all-gather traffic grows with rank count).");
}
