//! Figure 13c: PARSEC Blackscholes speedup — Argo vs Pthreads vs MPI.
//!
//! Expected shape (paper): one barrier per iteration lets Argo scale to
//! 128 nodes (2048 threads); the MPI port stops scaling at 16 nodes (256
//! threads) because every iteration funnels the portfolio through rank 0.

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::blackscholes::{run_argo, run_mpi_variant, BsParams};

fn main() {
    let full = full_scale();
    let p = if full {
        BsParams { options: 262_144, iterations: 4 }
    } else {
        BsParams { options: 16_384, iterations: 3 }
    };
    let tpn = threads_per_node();
    let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);

    print_header(
        "Figure 13c: Blackscholes speedup over sequential",
        &["config", "threads", "speedup"],
    );
    let mut pthreads_ts = vec![2, 4, 8];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
        assert!(out.checksum_matches(&seq, 1e-6));
        print_row(&[cell("Pthreads"), cell(t), f2(out.speedup_over(&seq))]);
    }
    for n in bench::node_sweep(128) {
        let argo = run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(argo.checksum_matches(&seq, 1e-6));
        let mpi = run_mpi_variant(n, tpn, p);
        assert!(mpi.checksum_matches(&seq, 1e-6));
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(argo.speedup_over(&seq)),
        ]);
        print_row(&[
            cell(format!("MPI {n}n")),
            cell(n * tpn),
            f2(mpi.speedup_over(&seq)),
        ]);
    }
    println!("\nShape check (paper): Argo scales to the largest node count; the MPI");
    println!("port's rank-0 scatter/gather saturates and it stops scaling first.");
}
