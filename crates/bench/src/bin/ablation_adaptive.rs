//! Ablation: adaptive classification by decay (paper §3.2 future work).
//!
//! Carina's classification is one-way: once a page is Shared,MW it
//! self-invalidates at every fence forever — even if its sharing pattern
//! changes. A phase-structured workload (ownership of a working set
//! migrates between phases) shows the cost, and the decay extension
//! (`ArgoCtx::adapt_classification`) recovers it by letting pages
//! re-classify to the new phase's pattern.

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row};

/// Phased workload: in each phase, ownership of every chunk shifts by one
/// thread; within a phase, each owner re-reads and re-writes its chunk
/// `sweeps` times with a barrier after each sweep.
fn run(adapt: bool, elements: usize, phases: usize, sweeps: usize) -> (u64, u64, u64) {
    let machine = ArgoMachine::new(ArgoConfig::small(4, 2));
    let data = GlobalF64Array::alloc(machine.dsm(), elements);
    let report = machine.run(move |ctx| {
        ctx.start_measurement();
        let nt = ctx.nthreads();
        let per = elements.div_ceil(nt);
        let mut buf = vec![0.0f64; per];
        for phase in 0..phases {
            if adapt && phase > 0 {
                ctx.adapt_classification();
            }
            let owner_shift = (ctx.tid() + phase) % nt;
            let lo = (owner_shift * per).min(elements);
            let hi = ((owner_shift + 1) * per).min(elements);
            for _ in 0..sweeps {
                if hi > lo {
                    ctx.read_f64_slice(data.addr(lo), &mut buf[..hi - lo]);
                    for v in &mut buf[..hi - lo] {
                        *v += 1.0;
                    }
                    ctx.thread.compute((hi - lo) as u64 * 2);
                    ctx.write_f64_slice(data.addr(lo), &buf[..hi - lo]);
                }
                ctx.barrier();
            }
        }
        0.0
    });
    (
        report.cycles,
        report.coherence.si_invalidated,
        report.coherence.read_misses,
    )
}

fn main() {
    let full = full_scale();
    let (elements, phases, sweeps) = if full {
        (1 << 17, 6, 8)
    } else {
        (1 << 14, 4, 5)
    };
    print_header(
        "Ablation: adaptive classification (phase-migrating ownership)",
        &["variant", "Mcycles", "SI-invalidated", "read misses"],
    );
    let (c1, si1, m1) = run(false, elements, phases, sweeps);
    print_row(&[
        cell("one-way (paper)"),
        f2(c1 as f64 / 1e6),
        cell(si1),
        cell(m1),
    ]);
    let (c2, si2, m2) = run(true, elements, phases, sweeps);
    print_row(&[
        cell("with decay"),
        f2(c2 as f64 / 1e6),
        cell(si2),
        cell(m2),
    ]);
    println!(
        "\ndecay speedup: {:.2}x (SI events {} -> {}, misses {} -> {})",
        c1 as f64 / c2 as f64,
        si1,
        si2,
        m1,
        m2
    );
    println!("Expectation: after each ownership shift the one-way classification is");
    println!("stuck at S,MW (invalidate + refetch every sweep), while decay lets the");
    println!("new owners' pages re-classify private and survive fences.");
}
