//! Ablation: passive vs active directory.
//!
//! Argo's central claim is that a directory needing **no message handlers**
//! (all protocol actions are requester-issued one-sided ops) removes
//! latency from every coherence action. This ablation runs the same
//! benchmarks with `active_directory = true`, which charges a software
//! message-handler invocation at the home for every directory operation
//! and notification — the traditional DSM design.

use bench::{cell, f3, full_scale, geomean, print_header, print_row, six, threads_per_node};
use carina::CarinaConfig;

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    print_header(
        "Ablation: active-directory slowdown vs passive (Argo)",
        &["benchmark", "passive", "active", "handlers"],
    );
    let mut ratios = Vec::new();
    for name in six::NAMES {
        let passive = six::run(name, nodes, tpn, CarinaConfig::default(), full);
        let cfg = CarinaConfig {
            active_directory: true,
            ..Default::default()
        };
        let active = six::run(name, nodes, tpn, cfg, full);
        assert!(passive.checksum_matches(&active, 1e-6));
        assert_eq!(passive.net.handler_invocations, 0);
        let r = active.cycles as f64 / passive.cycles as f64;
        ratios.push(r);
        print_row(&[
            cell(name),
            f3(1.0),
            f3(r),
            cell(active.net.handler_invocations),
        ]);
    }
    print_row(&[cell("Average"), f3(1.0), f3(geomean(&ratios)), cell("")]);
    println!("\nExpectation: active >= passive on every benchmark; the gap grows with");
    println!("miss rate (each miss's directory access pays a handler at the home).");
}
