//! Figure 13e: NAS EP (CLASS D in the paper) — Argo vs OpenMP vs UPC.
//!
//! Expected shape (paper): embarrassingly parallel; all three scale
//! near-linearly to 128 nodes / 2048 threads, showing Argo "can compete
//! directly with PGAS systems that require significant effort to program".

use argo::{ArgoConfig, ArgoMachine};
use bench::{cell, f2, full_scale, print_header, print_row, threads_per_node};
use workloads::ep::{run_argo, run_pgas, EpParams};

fn main() {
    let full = full_scale();
    let p = if full {
        EpParams { pairs: 1 << 22 }
    } else {
        EpParams { pairs: 1 << 18 }
    };
    let tpn = threads_per_node();
    let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);

    print_header(
        "Figure 13e: NAS EP speedup over sequential",
        &["config", "threads", "speedup"],
    );
    let mut pthreads_ts = vec![4];
    if !pthreads_ts.contains(&tpn.min(16)) {
        pthreads_ts.push(tpn.min(16));
    }
    for t in pthreads_ts {
        let out = run_argo(&ArgoMachine::new(ArgoConfig::small(1, t)), p);
        assert!(out.checksum_matches(&seq, 1e-6));
        print_row(&[cell("OpenMP"), cell(t), f2(out.speedup_over(&seq))]);
    }
    for n in bench::node_sweep(128) {
        let argo = run_argo(&ArgoMachine::new(ArgoConfig::small(n, tpn)), p);
        assert!(argo.checksum_matches(&seq, 1e-6));
        let upc = run_pgas(n, tpn, p);
        assert!(upc.checksum_matches(&seq, 1e-6));
        print_row(&[
            cell(format!("Argo {n}n")),
            cell(n * tpn),
            f2(argo.speedup_over(&seq)),
        ]);
        print_row(&[
            cell(format!("UPC {n}n")),
            cell(n * tpn),
            f2(upc.speedup_over(&seq)),
        ]);
    }
    println!("\nShape check (paper): near-linear scaling for Argo and UPC alike;");
    println!("the only communication is the final reduction.");
}
