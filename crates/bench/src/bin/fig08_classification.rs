//! Figure 8: impact of the classification scheme (S vs naive P/S vs P/S3)
//! on execution time, normalized to S, for the six benchmarks on 4 nodes.
//!
//! Expected shape (paper): naive P/S is *no better* than S — the private
//! pages it refuses to self-downgrade must be checkpointed at every sync
//! point, which eats the benefit. P/S3 (private pages self-downgraded,
//! writer classification filtering SI) wins, averaging ~20 % faster.

use bench::{cell, f3, full_scale, geomean, print_header, print_row, six, threads_per_node};
use carina::{CarinaConfig, ClassificationMode};

fn main() {
    let full = full_scale();
    let nodes = 4;
    let tpn = threads_per_node();
    print_header(
        "Figure 8: normalized execution time (lower is better)",
        &["benchmark", "S", "P/S", "P/S3"],
    );
    let mut ratios_ps = Vec::new();
    let mut ratios_ps3 = Vec::new();
    for name in six::NAMES {
        let s = six::run(
            name,
            nodes,
            tpn,
            CarinaConfig::with_mode(ClassificationMode::AllShared),
            full,
        );
        let ps = six::run(
            name,
            nodes,
            tpn,
            CarinaConfig::with_mode(ClassificationMode::PsNaive),
            full,
        );
        let ps3 = six::run(
            name,
            nodes,
            tpn,
            CarinaConfig::with_mode(ClassificationMode::Ps3),
            full,
        );
        assert!(
            s.checksum_matches(&ps3, 1e-6) && s.checksum_matches(&ps, 1e-6),
            "{name}: checksums diverge across modes"
        );
        let rps = ps.cycles as f64 / s.cycles as f64;
        let rps3 = ps3.cycles as f64 / s.cycles as f64;
        ratios_ps.push(rps);
        ratios_ps3.push(rps3);
        print_row(&[cell(name), f3(1.0), f3(rps), f3(rps3)]);
    }
    print_row(&[
        cell("Average"),
        f3(1.0),
        f3(geomean(&ratios_ps)),
        f3(geomean(&ratios_ps3)),
    ]);
    println!("\nShape check (paper): P/S ~= S (checkpointing overhead cancels the gain);");
    println!("P/S3 < 1.0 on benchmarks with private/read-only pages (avg ~0.8).");
}
