//! Figure 11: scaling of lock-synchronized code on a single node —
//! **measured in real time on real threads** (this is the one figure that
//! needs no simulation: our QD/Cohort/Mutex implementations are genuine).
//!
//! Expected shape (paper): QD locking on top (its helper keeps the heap
//! hot in one core's cache and inserts detach), Cohort below it, the
//! Pthreads mutex flat/declining beyond a few threads.

use bench::prioq::LocalWork;
use bench::{cell, f2, full_scale, print_header, print_row};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vela::pairing_heap::PairingHeap;
use vela::{CohortLock, CsLock, FcLock, HboLock, HclhLock, McsLock, PthreadsMutex, QdLock};

/// Run the microbenchmark for `dur` and return ops/µs.
fn throughput<L>(lock: Arc<L>, threads: usize, work_units: usize, dur: Duration) -> f64
where
    L: CsLock<PairingHeap> + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    // Pre-populate so extract_min usually succeeds.
    lock.with(0, |h| {
        for k in 0..4096u64 {
            h.insert(k);
        }
    });
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let lock = lock.clone();
            let stop = stop.clone();
            let ops = ops.clone();
            std::thread::spawn(move || {
                let mut w = LocalWork::new(t as u64 + 1);
                let socket = t / 4; // paper topology: 4 cores per NUMA node
                let mut local_ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    w.run(work_units);
                    if w.coin() {
                        let k = w.key();
                        lock.with(socket, move |h| h.insert(k));
                    } else {
                        lock.with(socket, |h| {
                            h.extract_min();
                        });
                    }
                    local_ops += 1;
                }
                ops.fetch_add(local_ops, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    ops.load(Ordering::Relaxed) as f64 / dur.as_micros() as f64
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!(
            "WARNING: only {cores} CPU core(s) available — this figure measures real\n\
             concurrent lock throughput; with fewer cores than threads the scaling\n\
             series degenerates to timesharing. The lock *ordering* may still show."
        );
    }
    let full = full_scale();
    let dur = Duration::from_millis(if full { 1000 } else { 200 });
    let work_units = 48; // the paper's Figure 11/12 setting
    let thread_counts: &[usize] = if full {
        &[1, 2, 4, 6, 8, 10, 12, 14, 16]
    } else {
        &[1, 2, 4, 8]
    };
    print_header(
        "Figure 11: single-node lock scaling (ops/us, real time)",
        &["threads", "QD", "Cohort", "Pthreads", "MCS", "CLH", "FlatComb", "HBO", "HCLH"],
    );
    for &t in thread_counts {
        let qd = throughput(Arc::new(QdLock::new(PairingHeap::new())), t, work_units, dur);
        let cohort = throughput(
            Arc::new(CohortLock::new(4, 48, PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        let mutex = throughput(
            Arc::new(PthreadsMutex::new(PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        let mcs = throughput(Arc::new(McsLock::new(PairingHeap::new())), t, work_units, dur);
        let clh = throughput(
            Arc::new(vela::ClhLock::new(PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        let fc = throughput(
            Arc::new(FcLock::new(256, PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        let hbo = throughput(
            Arc::new(HboLock::new(8, 64, PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        let hclh = throughput(
            Arc::new(HclhLock::new(4, 48, PairingHeap::new())),
            t,
            work_units,
            dur,
        );
        print_row(&[
            cell(t),
            f2(qd),
            f2(cohort),
            f2(mutex),
            f2(mcs),
            f2(clh),
            f2(fc),
            f2(hbo),
            f2(hclh),
        ]);
    }
    println!("\nShape check (paper): QD highest at high thread counts; Cohort second;");
    println!("the Pthreads mutex stops scaling after a handful of threads.");
}
