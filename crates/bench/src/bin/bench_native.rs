//! Wall-clock workload benchmark on the native transport.
//!
//! Runs a set of Argo workloads end-to-end on [`ArgoMachine::native`] — the
//! real shared-memory backend with no virtual clock — and emits one JSON
//! record per (workload, cluster shape) with wall-clock timings. This is
//! the native counterpart of `BENCH_simulator.json`: the simulator report
//! gates simulation throughput, this one gates how fast the *protocol
//! engine itself* executes on host threads.
//!
//! Usage: `bench_native [OUT.json]` (default `BENCH_native.json`). Scale
//! with `NATIVE_BENCH_REPS` (default 3) and `FULL_SCALE=1` for the larger
//! inputs.

use argo::{ArgoConfig, ArgoMachine};
use workloads::harness::Outcome;
use workloads::{matmul, sor};

struct Record {
    id: String,
    wall_seconds: Vec<f64>,
    checksum: f64,
    rdma_reads: u64,
    rdma_writes: u64,
    rdma_atomics: u64,
    /// Latency histograms of the last rep (wall nanoseconds on native).
    profile: obs::ProfileSnapshot,
}

fn bench<F: Fn() -> Outcome>(id: &str, reps: usize, run: F) -> Record {
    let mut wall = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let out = run();
        wall.push(out.wall_seconds);
        last = Some(out);
    }
    let out = last.expect("at least one rep");
    assert_eq!(out.cycles, 0, "native runs must not carry virtual time");
    Record {
        id: id.to_string(),
        wall_seconds: wall,
        checksum: out.checksum,
        rdma_reads: out.net.rdma_reads,
        rdma_writes: out.net.rdma_writes,
        rdma_atomics: out.net.rdma_atomics,
        profile: out.profile,
    }
}

/// `{"site": {"count": n, "p50": .., "p99": ..}, ...}` for occupied sites.
fn latency_json(p: &obs::ProfileSnapshot) -> String {
    let mut parts = Vec::new();
    for site in obs::Site::ALL {
        let h = p.get(site);
        if h.is_empty() {
            continue;
        }
        parts.push(format!(
            "\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            site.name(),
            h.count(),
            h.percentile(50.0),
            h.percentile(99.0)
        ));
    }
    format!("{{{}}}", parts.join(", "))
}

fn json_f64_list(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_native.json".into());
    let reps: usize = std::env::var("NATIVE_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let full = std::env::var("FULL_SCALE").is_ok_and(|v| v == "1");
    let (mm_n, sor_n, sor_iters) = if full { (256, 512, 10) } else { (96, 128, 6) };
    let shapes: &[(usize, usize)] = &[(1, 4), (2, 2), (4, 2)];

    let mut records = Vec::new();
    for &(nodes, tpn) in shapes {
        let p = matmul::MatmulParams { n: mm_n };
        records.push(bench(
            &format!("native/matmul_n{mm_n}/{nodes}x{tpn}"),
            reps,
            || matmul::run_argo(&ArgoMachine::native(ArgoConfig::small(nodes, tpn)), p),
        ));
        let p = sor::SorParams {
            n: sor_n,
            iterations: sor_iters,
            omega: 1.25,
        };
        records.push(bench(
            &format!("native/sor_n{sor_n}/{nodes}x{tpn}"),
            reps,
            || sor::run_argo(&ArgoMachine::native(ArgoConfig::small(nodes, tpn)), p),
        ));
    }

    let mut body = String::from("{\n  \"backend\": \"native\",\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let mean = r.wall_seconds.iter().sum::<f64>() / r.wall_seconds.len() as f64;
        let min = r.wall_seconds.iter().cloned().fold(f64::INFINITY, f64::min);
        body.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_wall_s\": {:.6}, \"min_wall_s\": {:.6}, \
             \"reps_wall_s\": {}, \"checksum\": {:.6}, \
             \"rdma_reads\": {}, \"rdma_writes\": {}, \"rdma_atomics\": {}, \
             \"latency\": {}}}{}\n",
            r.id,
            mean,
            min,
            json_f64_list(&r.wall_seconds),
            r.checksum,
            r.rdma_reads,
            r.rdma_writes,
            r.rdma_atomics,
            latency_json(&r.profile),
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&out_path, &body).expect("write native bench report");
    println!("{body}");
    eprintln!("wrote {out_path}");
}
