//! The six-benchmark suite used by the protocol-characterization figures
//! (8, 9, 10): Blackscholes, CG, EP, LU, MM, Nbody on a 4-node cluster,
//! with a configurable Carina configuration.

use argo::{ArgoConfig, ArgoMachine};
use carina::CarinaConfig;
use workloads::{blackscholes, cg, ep, lu, matmul, nbody, Outcome};

/// Benchmark names in the paper's Figure 8 order.
pub const NAMES: [&str; 6] = ["Blackscholes", "CG", "EP", "LU", "MM", "Nbody"];

/// Run one of the six by name on a cluster with the given coherence
/// config. `full` selects larger inputs.
pub fn run(
    name: &str,
    nodes: usize,
    threads_per_node: usize,
    carina: CarinaConfig,
    full: bool,
) -> Outcome {
    let mut cfg = ArgoConfig::small(nodes, threads_per_node);
    cfg.carina = carina;
    cfg.bytes_per_node = 32 << 20;
    let machine = ArgoMachine::new(cfg);
    let s = |reduced: usize, fullv: usize| if full { fullv } else { reduced };
    match name {
        "Blackscholes" => blackscholes::run_argo(
            &machine,
            blackscholes::BsParams {
                options: s(8_192, 65_536),
                iterations: s(3, 5),
            },
        ),
        "CG" => cg::run_argo(
            &machine,
            cg::CgParams {
                n: s(2_048, 16_384),
                nnz_per_row: s(8, 16),
                iterations: s(4, 15),
            },
        ),
        "EP" => ep::run_argo(
            &machine,
            ep::EpParams {
                pairs: s(1 << 16, 1 << 20),
            },
        ),
        "LU" => lu::run_argo(
            &machine,
            lu::LuParams {
                n: s(128, 384),
                block: 16,
            },
        ),
        "MM" => matmul::run_argo(
            &machine,
            matmul::MatmulParams { n: s(96, 384) },
        ),
        "Nbody" => nbody::run_argo(
            &machine,
            nbody::NbodyParams {
                bodies: s(768, 4_096),
                steps: s(2, 4),
            },
        ),
        other => panic!("unknown benchmark {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "runs all six workloads; use --release")]
    fn every_name_runs() {
        for name in NAMES {
            let out = run(name, 2, 2, CarinaConfig::default(), false);
            assert!(out.cycles > 0, "{name} produced no time");
            assert!(out.checksum.is_finite(), "{name} checksum not finite");
        }
    }
}
