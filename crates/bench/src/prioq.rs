//! The concurrent priority-queue microbenchmark of §5.3 (Figures 11/12):
//! a sequential pairing heap protected by a lock; each thread alternates
//! thread-local work with a global operation (insert or extract_min with
//! equal probability). Inserts don't need a result and may be delegated
//! detached; extract_min waits.

use rand::prelude::*;

/// One unit of thread-local work: two updates to random elements of a
/// thread-local array of 64 integers (exactly the paper's definition).
pub struct LocalWork {
    array: [u64; 64],
    rng: SmallRng,
}

impl LocalWork {
    pub fn new(seed: u64) -> Self {
        LocalWork {
            array: [0; 64],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Perform `units` work units; returns a sink value so the work is not
    /// optimized away.
    #[inline]
    pub fn run(&mut self, units: usize) -> u64 {
        let mut sink = 0;
        for _ in 0..units {
            let i = (self.rng.random::<u32>() as usize) % 64;
            let j = (self.rng.random::<u32>() as usize) % 64;
            self.array[i] = self.array[i].wrapping_add(1);
            self.array[j] ^= self.array[i];
            sink ^= self.array[j];
        }
        sink
    }

    /// Flip a fair coin: true = insert, false = extract_min.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }

    /// A random key.
    #[inline]
    pub fn key(&mut self) -> u64 {
        self.rng.random()
    }
}

/// Virtual cycles for one unit of local work (a handful of ALU ops and two
/// L1 accesses).
pub const WORK_UNIT_CYCLES: u64 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_work_is_deterministic_per_seed() {
        let mut a = LocalWork::new(7);
        let mut b = LocalWork::new(7);
        assert_eq!(a.run(100), b.run(100));
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut w = LocalWork::new(3);
        let heads = (0..10_000).filter(|_| w.coin()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
