//! # bench — per-figure reproduction harnesses
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §6 for the
//! index). Each prints the same rows/series the paper reports, from the
//! simulated cluster. Run e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin fig08_classification
//! cargo run --release -p bench --bin fig13c_blackscholes -- --full
//! ```
//!
//! `--full` selects paper-scale sweeps (slow); the default is a reduced
//! sweep with the same shape. This library holds shared table/CLI helpers.

use std::fmt::Display;

/// Parse `--full` from the process arguments.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Print a header row followed by a separator.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    let row = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Print one row of right-aligned cells.
pub fn print_row(cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
}

/// Format helper.
pub fn cell(v: impl Display) -> String {
    format!("{v}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Node-count sweep for a scaling figure: reduced by default, the paper's
/// range with `--full`.
pub fn node_sweep(max_full: usize) -> Vec<usize> {
    let full = full_scale();
    let cap = if full { max_full } else { max_full.min(8) };
    let mut v = vec![1, 2, 4];
    let mut n = 8;
    while n <= cap {
        v.push(n);
        n *= 2;
    }
    v.retain(|&x| x <= cap);
    v.dedup();
    v
}

/// Threads per node for cluster runs: the paper's 15, or 4 in reduced mode
/// (so reduced runs stay fast on a laptop).
pub fn threads_per_node() -> usize {
    if full_scale() {
        15
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn node_sweep_is_monotone_and_capped() {
        let v = node_sweep(32);
        assert_eq!(v[0], 1);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&n| n <= 32));
    }
}

pub mod six;
pub mod prioq;
