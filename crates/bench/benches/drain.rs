//! Downgrade/drain cost — the regression guard for the write-mask diff
//! path and the home-coalesced batch drain.
//!
//! A downgrade's host cost should be O(dirty words), not O(page): a page
//! with a handful of scattered stores must diff by consulting its write
//! mask, not by scanning all 512 words against an eagerly copied twin. And
//! an SD fence holding many dirty pages should issue one batched verb per
//! home rather than one posting per page. Two shapes pin this down:
//!
//! - `downgrade/{sparse,dense}`: dirty one page with 8 words in one chunk
//!   vs. all 512 words, then fence. Sparse must be a small fraction of
//!   dense — under the old full-scan path both cost the same diff sweep.
//! - `sd_fence_drain/occupancy_N`: fence with N dirty pages buffered, for
//!   the per-page and home-coalesced posting paths.

use carina::{BatchDrain, CarinaConfig, Dsm};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::{GlobalAddr, PAGE_BYTES};
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

/// A node-0 thread on a 4-node machine (interleaved homes: 3 of 4 pages
/// are remote, so fence drains have several homes to coalesce).
fn setup(batch: BatchDrain) -> (Arc<Dsm>, SimThread) {
    let topo = ClusterTopology::tiny(4);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let cfg = CarinaConfig {
        batch_drain: batch,
        ..Default::default()
    };
    let dsm = Dsm::new(net.clone(), 64 << 20, cfg);
    let t = SimThread::new(topo.loc(NodeId(0), 0), net);
    (dsm, t)
}

/// Remote page `i` as seen from node 0 (skip every 4th page: node 0's own
/// homes are never cached).
fn remote_page(i: u64) -> u64 {
    let p = i + i / 3 + 1;
    debug_assert!(!p.is_multiple_of(4));
    p
}

fn bench_downgrade_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("downgrade");
    // Sparse: 8 words inside one 64-word chunk — the masked diff visits one
    // chunk; the lazy twin copies one chunk at the first store.
    let (dsm, mut t) = setup(BatchDrain::Never);
    g.bench_function("sparse_8_words", |b| {
        b.iter(|| {
            let base = remote_page(0) * PAGE_BYTES;
            for w in 0..8u64 {
                dsm.write_u64(&mut t, GlobalAddr(base + w * 8), w);
            }
            dsm.sd_fence(&mut t);
        })
    });
    // Dense: every word of the page — mask covers all chunks, the diff
    // degenerates to the full scan (and ships the whole page).
    let (dsm, mut t) = setup(BatchDrain::Never);
    g.bench_function("dense_512_words", |b| {
        b.iter(|| {
            let base = remote_page(0) * PAGE_BYTES;
            for w in 0..512u64 {
                dsm.write_u64(&mut t, GlobalAddr(base + w * 8), w);
            }
            dsm.sd_fence(&mut t);
        })
    });
    g.finish();
}

fn bench_fence_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("sd_fence_drain");
    for &occupancy in &[8u64, 64, 512] {
        for (tag, mode) in [("single", BatchDrain::Never), ("batched", BatchDrain::Always)] {
            let (dsm, mut t) = setup(mode);
            g.bench_function(format!("occupancy_{occupancy}/{tag}"), |b| {
                b.iter(|| {
                    // One store per page: the buffer holds `occupancy`
                    // dirty pages spread over three homes at the fence.
                    for i in 0..occupancy {
                        let addr = GlobalAddr(remote_page(i) * PAGE_BYTES);
                        dsm.write_u64(&mut t, addr, i);
                    }
                    dsm.sd_fence(&mut t);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_downgrade_density, bench_fence_drain);
criterion_main!(benches);
