//! Fence-sweep cost vs. cache *residency* — the regression guard for the
//! O(resident) sweep work.
//!
//! An SI fence must examine every resident page, but it should owe nothing
//! for the empty slots of a roomy cache: the default geometry is 8192
//! slots, and a thread that touched 3 pages should fence in nanoseconds,
//! not in time proportional to the cache size. These benchmarks pin a
//! node's residency at a handful vs. thousands of pages (out of the same
//! 8192-slot cache) and time the fence: cost must track the first number,
//! not the second.
//!
//! Residency is steady across iterations because read-only pages are
//! Private under P/S3 classification, and private pages survive SI fences.
//!
//! Set `LYRA_DISABLED=1` to run with the flight recorder off: the CI
//! overhead guard (`scripts/bench_json.sh`) times both configurations and
//! fails if always-on recording costs more than a few percent here.

use carina::{CarinaConfig, Dsm};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::{GlobalAddr, PAGE_BYTES};
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

/// A node-0 thread with exactly `pages` remote pages resident in its
/// (default: 8192-slot) page cache.
fn resident_dsm(pages: u64) -> (Arc<Dsm>, SimThread) {
    let topo = ClusterTopology::tiny(2);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::new(net.clone(), 64 << 20, CarinaConfig::default());
    if std::env::var_os("LYRA_DISABLED").is_some() {
        dsm.lyra().set_enabled(false);
    }
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
    // Odd pages are homed at node 1 (interleaved homes): reading them from
    // node 0 fills distinct cache slots. Nobody else touches them, so they
    // classify Private and SI fences keep them resident.
    for i in 0..pages {
        let _ = dsm.read_u64(&mut t, GlobalAddr((2 * i + 1) * PAGE_BYTES));
    }
    (dsm, t)
}

fn bench_fences(c: &mut Criterion) {
    let slots = CarinaConfig::default().cache.lines;
    let mut g = c.benchmark_group("fences");
    for &resident in &[3u64, 3000] {
        let (dsm, mut t) = resident_dsm(resident);
        g.bench_function(format!("si_fence/resident_{resident}_of_{slots}"), |b| {
            b.iter(|| dsm.si_fence(&mut t))
        });
        // Acquire+release pair, as a lock handoff would issue.
        let (dsm, mut t) = resident_dsm(resident);
        g.bench_function(format!("full_fence/resident_{resident}_of_{slots}"), |b| {
            b.iter(|| {
                dsm.sd_fence(&mut t);
                dsm.si_fence(&mut t);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fences);
criterion_main!(benches);
