//! Read-miss latency — the regression guard for overlapped line fetches
//! and the stride prefetcher.
//!
//! Every benchmark reports *virtual* cycles (via `iter_custom`, cycles
//! rendered as nanoseconds): what matters is how much simulated time a
//! miss stream costs, not how fast the host executes the protocol code.
//! Two families:
//!
//! - `async_line_L`: sweep the same 1024 pages with `pages_per_line = L`.
//!   At L=1 every miss fetches one page with nothing else in flight — the
//!   sequential reference. At L≥4 each miss issues the whole line's page
//!   reads concurrently and polls once, so the stream must get cheaper
//!   even though the pages touched are identical.
//! - `{strided,random}_prefetch`: the same 256 single-page remote misses
//!   (a constant stride-4 walk, so every page is remote and the line
//!   stride is stable) with the stride predictor on. The strided order
//!   lets speculative fetches land before the demand miss; the shuffled
//!   order of the same pages gives the predictor nothing, pinning down
//!   that the win comes from prediction rather than from the ring
//!   machinery itself.
//!
//! The cache is kept at 64 lines so a 1024-page sweep conflicts every
//! slot on every pass: each access is a genuine miss stream, not a warm
//! replay.

use carina::{CarinaConfig, Dsm};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mem::{CacheConfig, GlobalAddr, PAGE_BYTES};
use rma::splitmix64;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;
use std::time::Duration;

/// Direct-mapped slots: small enough that the sweep below evicts every
/// line twice per pass.
const LINES: usize = 64;
/// Pages touched per pass — identical across all `pages_per_line` values.
const PAGES: u64 = 1024;

/// A node-0 thread on a 4-node machine: 3 of every 4 pages in a line are
/// remote, so a line fill has several homes' reads to overlap.
fn setup(pages_per_line: usize, prefetch_lines: usize) -> (Arc<Dsm>, SimThread) {
    let topo = ClusterTopology::tiny(4);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let cfg = CarinaConfig {
        cache: CacheConfig::new(LINES, pages_per_line),
        prefetch_lines,
        prefetch_streak: 2,
        ..Default::default()
    };
    let dsm = Dsm::new(net.clone(), 64 << 20, cfg);
    let t = SimThread::new(topo.loc(NodeId(0), 0), net);
    (dsm, t)
}

/// Virtual cycles one full sweep of the miss stream costs.
fn sweep(dsm: &Dsm, t: &mut SimThread, order: &[u64]) -> u64 {
    let start = t.now();
    for &p in order {
        black_box(dsm.read_u64(t, GlobalAddr(p * PAGE_BYTES)));
    }
    t.now() - start
}

fn bench_line_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_miss");
    let order: Vec<u64> = (0..PAGES).collect();
    for &ppl in &[1usize, 4, 8] {
        let (dsm, mut t) = setup(ppl, 0);
        g.bench_function(format!("async_line_{ppl}"), |b| {
            b.iter_custom(|iters| {
                let mut cycles = 0;
                for _ in 0..iters {
                    cycles += sweep(&dsm, &mut t, &order);
                }
                Duration::from_nanos(cycles)
            })
        });
    }
    g.finish();
}

fn bench_prefetch_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_miss");
    // Stride 4 from page 1: constant stride, never a node-0 home page —
    // the predictor's next-line guess is always a real remote miss.
    let strided: Vec<u64> = (0..PAGES / 4).map(|i| 1 + 4 * i).collect();
    // A fixed Fisher–Yates shuffle: deterministic, but stride-free.
    let mut random = strided.clone();
    for i in (1..random.len()).rev() {
        let j = (splitmix64(0xBEEF ^ i as u64) % (i as u64 + 1)) as usize;
        random.swap(i, j);
    }
    for (tag, order) in [("strided", &strided), ("random", &random)] {
        let (dsm, mut t) = setup(1, 8);
        g.bench_function(format!("{tag}_prefetch"), |b| {
            b.iter_custom(|iters| {
                let mut cycles = 0;
                for _ in 0..iters {
                    cycles += sweep(&dsm, &mut t, order);
                }
                Duration::from_nanos(cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_line_fill, bench_prefetch_streams);
criterion_main!(benches);
