//! Criterion benchmarks of the *simulator's* real-time throughput on whole
//! workloads — a regression guard: protocol-engine slowdowns show up here
//! long before they make the figure harnesses unusable.

use argo::{ArgoConfig, ArgoMachine};
use criterion::{criterion_group, criterion_main, Criterion};
use workloads::{blackscholes, cg, sor};

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);

    g.bench_function("blackscholes_4n_2t", |b| {
        let p = blackscholes::BsParams {
            options: 4096,
            iterations: 2,
        };
        b.iter(|| {
            let m = ArgoMachine::new(ArgoConfig::small(4, 2));
            blackscholes::run_argo(&m, p).cycles
        })
    });

    g.bench_function("cg_2n_2t", |b| {
        let p = cg::CgParams {
            n: 512,
            nnz_per_row: 6,
            iterations: 3,
        };
        b.iter(|| {
            let m = ArgoMachine::new(ArgoConfig::small(2, 2));
            cg::run_argo(&m, p).cycles
        })
    });

    g.bench_function("sor_2n_2t", |b| {
        let p = sor::SorParams {
            n: 64,
            iterations: 3,
            omega: 1.25,
        };
        b.iter(|| {
            let m = ArgoMachine::new(ArgoConfig::small(2, 2));
            sor::run_argo(&m, p).cycles
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_workloads
}
criterion_main!(benches);
