//! Criterion microbenchmarks of the pairing heap — the sequential data
//! structure at the heart of the §5.3 microbenchmark. Also compares the
//! DSM-resident variant's real-time overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::hint::black_box;
use vela::pairing_heap::PairingHeap;
use vela::DsmPairingHeap;

fn bench_heap(c: &mut Criterion) {
    c.bench_function("pairing_heap/insert_extract_cycle", |b| {
        let mut h = PairingHeap::with_capacity(1024);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..512 {
            h.insert(rng.random());
        }
        b.iter(|| {
            h.insert(black_box(rng.random()));
            black_box(h.extract_min());
        })
    });

    c.bench_function("pairing_heap/sort_1k", |b| {
        let keys: Vec<u64> = SmallRng::seed_from_u64(2).random_iter().take(1000).collect();
        b.iter(|| {
            let mut h = PairingHeap::with_capacity(1000);
            for &k in &keys {
                h.insert(k);
            }
            let mut last = 0;
            while let Some(k) = h.extract_min() {
                last = k;
            }
            black_box(last)
        })
    });

    c.bench_function("dsm_pairing_heap/insert_extract_cycle", |b| {
        let topo = ClusterTopology::tiny(2);
        let net = Interconnect::new(topo, CostModel::paper_2011());
        let dsm = carina::Dsm::new(net.clone(), 8 << 20, carina::CarinaConfig::default());
        let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
        let base = dsm
            .allocator()
            .alloc(DsmPairingHeap::bytes_needed(2048), 8)
            .unwrap();
        let h = DsmPairingHeap::init(&dsm, &mut t, base, 2048);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..512 {
            h.insert(&dsm, &mut t, rng.random());
        }
        b.iter(|| {
            h.insert(&dsm, &mut t, black_box(rng.random()));
            black_box(h.extract_min(&dsm, &mut t));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_heap
}
criterion_main!(benches);
