//! Criterion microbenchmarks of the DSM access path: the *real-time*
//! cost of the protocol engine itself (hit path, miss path, fences) —
//! i.e., how fast the simulator runs, not simulated time.

use argo::{ArgoConfig, ArgoMachine};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::PAGE_BYTES;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::hint::black_box;

fn bench_dsm(c: &mut Criterion) {
    let topo = ClusterTopology::tiny(2);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = carina::Dsm::new(net.clone(), 32 << 20, carina::CarinaConfig::default());
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);

    // Home (local) word read.
    let local = mem::GlobalAddr(2 * PAGE_BYTES); // even page: homed at node 0
    dsm.write_u64(&mut t, local, 1);
    c.bench_function("dsm/read_home_word", |b| {
        b.iter(|| black_box(dsm.read_u64(&mut t, local)))
    });

    // Cached remote word read (hit).
    let remote = mem::GlobalAddr(3 * PAGE_BYTES);
    let _ = dsm.read_u64(&mut t, remote);
    c.bench_function("dsm/read_cached_remote_word", |b| {
        b.iter(|| black_box(dsm.read_u64(&mut t, remote)))
    });

    // Bulk slice read of one page (hit).
    let mut buf = vec![0.0f64; 512];
    c.bench_function("dsm/read_page_slice_hit", |b| {
        b.iter(|| dsm.read_f64_slice(&mut t, remote, black_box(&mut buf)))
    });

    // Cold miss + SI fence cycle: invalidate then refetch one page.
    c.bench_function("dsm/si_fence_plus_refetch", |b| {
        b.iter(|| {
            dsm.si_fence(&mut t);
            black_box(dsm.read_u64(&mut t, remote))
        })
    });

    // Write fault (twin + buffer) then downgrade via SD fence.
    c.bench_function("dsm/write_fault_plus_sd_fence", |b| {
        b.iter(|| {
            dsm.write_u64(&mut t, remote, 7);
            dsm.sd_fence(&mut t);
        })
    });

    // A whole small parallel region (machine spin-up + barrier).
    c.bench_function("machine/run_4threads_barrier", |b| {
        b.iter(|| {
            let m = ArgoMachine::new(ArgoConfig::small(2, 2));
            m.run(|ctx| ctx.barrier()).cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_dsm
}
criterion_main!(benches);
