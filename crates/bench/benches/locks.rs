//! Criterion microbenchmarks of the local lock implementations (the
//! real-time substrate of Figure 11): uncontended critical-section cost
//! and contended throughput for each lock.

use bench::prioq::LocalWork;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vela::pairing_heap::PairingHeap;
use vela::{ClhLock, CohortLock, CsLock, FcLock, McsLock, PthreadsMutex, QdLock};

fn uncontended<L: CsLock<u64>>(c: &mut Criterion, name: &str, lock: L) {
    c.bench_with_input(
        BenchmarkId::new("uncontended_increment", name),
        &lock,
        |b, l| {
            b.iter(|| {
                l.with(0, |v| {
                    *v = v.wrapping_add(1);
                    *v
                })
            })
        },
    );
}

fn contended<L>(c: &mut Criterion, name: &str, make: impl Fn() -> L)
where
    L: CsLock<PairingHeap> + Send + Sync + 'static,
{
    c.bench_function(format!("contended_heap_4t/{name}"), |b| {
        b.iter_custom(|iters| {
            let lock = Arc::new(make());
            lock.with(0, |h| {
                for k in 0..1024 {
                    h.insert(k);
                }
            });
            let stop = Arc::new(AtomicBool::new(false));
            // 3 background contenders.
            let handles: Vec<_> = (1..4)
                .map(|t| {
                    let lock = lock.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let mut w = LocalWork::new(t as u64);
                        while !stop.load(Ordering::Relaxed) {
                            black_box(w.run(16));
                            let k = w.key();
                            lock.with(t % 4, move |h| h.insert(k));
                            lock.with(t % 4, |h| {
                                h.extract_min();
                            });
                        }
                    })
                })
                .collect();
            let start = std::time::Instant::now();
            let mut w = LocalWork::new(0);
            for _ in 0..iters {
                let k = w.key();
                lock.with(0, move |h| h.insert(k));
            }
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
            elapsed
        })
    });
}

fn bench_locks(c: &mut Criterion) {
    uncontended(c, "pthreads", PthreadsMutex::new(0u64));
    uncontended(c, "mcs", McsLock::new(0u64));
    uncontended(c, "clh", ClhLock::new(0u64));
    uncontended(c, "cohort", CohortLock::new(4, 48, 0u64));
    uncontended(c, "qd", QdLock::new(0u64));
    uncontended(c, "flat_combining", FcLock::new(256, 0u64));

    contended(c, "pthreads", || PthreadsMutex::new(PairingHeap::new()));
    contended(c, "cohort", || CohortLock::new(4, 48, PairingHeap::new()));
    contended(c, "qd", || QdLock::new(PairingHeap::new()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_locks
}
criterion_main!(benches);
