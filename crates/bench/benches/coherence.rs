//! Coherence-policy head-to-head on the protocol's sharpest trade-off:
//! read-mostly sharing across repeated synchronization.
//!
//! Under SI/SD classification, a page with one writer and several readers
//! is Shared/SW, and every reader self-invalidates it at every SI fence —
//! each sync round re-fetches the whole read set even when nothing
//! changed. Under Tardis, a read installs a timestamp lease; an SI fence
//! only drops pages whose lease expired against the reader's logical
//! clock, so an unchanged read set survives sync after sync (and the
//! adaptive lease doubles on each renewal, stretching the quiet period).
//!
//! `read_mostly/{sisd,tardis,pyxis}` times one sync round — reader SI
//! fence plus a sweep over the shared read set — after a warm-up that lets
//! Tardis's leases adapt (and Pyxis's signals switch the pages to lease
//! mode). Tardis should win by roughly the read-miss refill cost, and
//! Pyxis should track it; `private/{sisd,tardis,pyxis}` pins the other
//! side (no sharing, every policy keeps everything) so the lease and
//! signal bookkeeping shows up as overhead, not as a free lunch.
//!
//! `mixed/{sisd,tardis,pyxis}` is the hybrid's home turf: half the region
//! is read-mostly, half is rewritten by the writer every round. SI/SD
//! refetches both halves at every reader fence; Tardis leases the quiet
//! half but pays lease churn on the hot half; Pyxis should lease the quiet
//! half and classify the hot half — beating both.

use carina::{CarinaConfig, CarinaSiSd, Coherence, Dsm, Pyxis, Tardis};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::{GlobalAddr, PAGE_BYTES};
use rma::SimTransport;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

const READ_PAGES: u64 = 64;

fn cluster<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread, SimThread) {
    let topo = ClusterTopology::tiny(2);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::with_policy(net.clone(), 64 << 20, CarinaConfig::default());
    let reader = SimThread::new(topo.loc(NodeId(0), 0), net.clone());
    let writer = SimThread::new(topo.loc(NodeId(1), 0), net);
    (dsm, reader, writer)
}

/// Read-mostly sharing: node 1 wrote the region once (so it is genuinely
/// shared, not private), node 0 re-reads it across repeated acquire
/// fences while nothing changes.
fn bench_read_mostly(c: &mut Criterion) {
    fn setup<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread) {
        let (dsm, mut reader, mut writer) = cluster::<C>();
        for p in 0..READ_PAGES {
            dsm.write_u64(&mut writer, GlobalAddr((2 * p + 1) * PAGE_BYTES), p);
        }
        dsm.sd_fence(&mut writer);
        // Warm-up rounds: classification settles (SI/SD) and leases adapt
        // upward (Tardis) before the timed section.
        for _ in 0..8 {
            dsm.si_fence(&mut reader);
            for p in 0..READ_PAGES {
                let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
            }
        }
        (dsm, reader)
    }
    let mut g = c.benchmark_group("coherence");
    {
        let (dsm, mut t) = setup::<CarinaSiSd>();
        g.bench_function(format!("read_mostly_{READ_PAGES}p/sisd"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Tardis>();
        g.bench_function(format!("read_mostly_{READ_PAGES}p/tardis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Pyxis>();
        g.bench_function(format!("read_mostly_{READ_PAGES}p/pyxis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    g.finish();
}

/// Private working set: the reader is the only node that ever touches the
/// pages. SI/SD classifies them Private and keeps them; Tardis keeps them
/// through leases. Neither policy should pay a refill, so this pins the
/// policies' fixed per-fence and per-hit overheads against each other.
fn bench_private(c: &mut Criterion) {
    fn setup<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread) {
        let (dsm, mut reader, _writer) = cluster::<C>();
        for p in 0..READ_PAGES {
            let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
        }
        for _ in 0..8 {
            dsm.si_fence(&mut reader);
            for p in 0..READ_PAGES {
                let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
            }
        }
        (dsm, reader)
    }
    let mut g = c.benchmark_group("coherence");
    {
        let (dsm, mut t) = setup::<CarinaSiSd>();
        g.bench_function(format!("private_{READ_PAGES}p/sisd"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Tardis>();
        g.bench_function(format!("private_{READ_PAGES}p/tardis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Pyxis>();
        g.bench_function(format!("private_{READ_PAGES}p/pyxis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    g.finish();
}

/// Mixed sharing — the adaptivity gap itself. A 64-page quiet set is
/// written once and then only read; a 32-page hot set is rewritten by the
/// writer every round. One timed round = writer rewrites the hot set and
/// releases, reader acquires and sweeps the whole region.
fn bench_mixed(c: &mut Criterion) {
    const HOT: u64 = READ_PAGES / 2;
    fn round<C: Coherence>(
        dsm: &Dsm<SimTransport, C>,
        reader: &mut SimThread,
        writer: &mut SimThread,
        r: u64,
    ) {
        for p in 0..HOT {
            dsm.write_u64(
                writer,
                GlobalAddr((2 * (READ_PAGES + p) + 1) * PAGE_BYTES),
                r + p,
            );
        }
        dsm.sd_fence(writer);
        dsm.si_fence(reader);
        for p in 0..READ_PAGES + HOT {
            let _ = dsm.read_u64(reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
        }
    }
    fn setup<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread, SimThread) {
        let (dsm, mut reader, mut writer) = cluster::<C>();
        for p in 0..READ_PAGES + HOT {
            dsm.write_u64(&mut writer, GlobalAddr((2 * p + 1) * PAGE_BYTES), p);
        }
        dsm.sd_fence(&mut writer);
        for r in 0..8 {
            round(&dsm, &mut reader, &mut writer, r);
        }
        (dsm, reader, writer)
    }
    let mut g = c.benchmark_group("coherence");
    {
        let (dsm, mut reader, mut writer) = setup::<CarinaSiSd>();
        g.bench_function(format!("mixed_{READ_PAGES}p/sisd"), |b| {
            b.iter(|| round(&dsm, &mut reader, &mut writer, 9))
        });
    }
    {
        let (dsm, mut reader, mut writer) = setup::<Tardis>();
        g.bench_function(format!("mixed_{READ_PAGES}p/tardis"), |b| {
            b.iter(|| round(&dsm, &mut reader, &mut writer, 9))
        });
    }
    {
        let (dsm, mut reader, mut writer) = setup::<Pyxis>();
        g.bench_function(format!("mixed_{READ_PAGES}p/pyxis"), |b| {
            b.iter(|| round(&dsm, &mut reader, &mut writer, 9))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_mostly, bench_private, bench_mixed);
criterion_main!(benches);
