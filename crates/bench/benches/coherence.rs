//! Coherence-policy head-to-head on the protocol's sharpest trade-off:
//! read-mostly sharing across repeated synchronization.
//!
//! Under SI/SD classification, a page with one writer and several readers
//! is Shared/SW, and every reader self-invalidates it at every SI fence —
//! each sync round re-fetches the whole read set even when nothing
//! changed. Under Tardis, a read installs a timestamp lease; an SI fence
//! only drops pages whose lease expired against the reader's logical
//! clock, so an unchanged read set survives sync after sync (and the
//! adaptive lease doubles on each renewal, stretching the quiet period).
//!
//! `read_mostly/{sisd,tardis}` times one sync round — reader SI fence plus
//! a sweep over the shared read set — after a warm-up that lets Tardis's
//! leases adapt. Tardis should win by roughly the read-miss refill cost;
//! `private/{sisd,tardis}` pins the other side (no sharing, both policies
//! keep everything) so the lease bookkeeping shows up as overhead, not as
//! a free lunch.

use carina::{CarinaConfig, CarinaSiSd, Coherence, Dsm, Tardis};
use criterion::{criterion_group, criterion_main, Criterion};
use mem::{GlobalAddr, PAGE_BYTES};
use rma::SimTransport;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

const READ_PAGES: u64 = 64;

fn cluster<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread, SimThread) {
    let topo = ClusterTopology::tiny(2);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::with_policy(net.clone(), 64 << 20, CarinaConfig::default());
    let reader = SimThread::new(topo.loc(NodeId(0), 0), net.clone());
    let writer = SimThread::new(topo.loc(NodeId(1), 0), net);
    (dsm, reader, writer)
}

/// Read-mostly sharing: node 1 wrote the region once (so it is genuinely
/// shared, not private), node 0 re-reads it across repeated acquire
/// fences while nothing changes.
fn bench_read_mostly(c: &mut Criterion) {
    fn setup<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread) {
        let (dsm, mut reader, mut writer) = cluster::<C>();
        for p in 0..READ_PAGES {
            dsm.write_u64(&mut writer, GlobalAddr((2 * p + 1) * PAGE_BYTES), p);
        }
        dsm.sd_fence(&mut writer);
        // Warm-up rounds: classification settles (SI/SD) and leases adapt
        // upward (Tardis) before the timed section.
        for _ in 0..8 {
            dsm.si_fence(&mut reader);
            for p in 0..READ_PAGES {
                let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
            }
        }
        (dsm, reader)
    }
    let mut g = c.benchmark_group("coherence");
    {
        let (dsm, mut t) = setup::<CarinaSiSd>();
        g.bench_function(format!("read_mostly_{READ_PAGES}p/sisd"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Tardis>();
        g.bench_function(format!("read_mostly_{READ_PAGES}p/tardis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    g.finish();
}

/// Private working set: the reader is the only node that ever touches the
/// pages. SI/SD classifies them Private and keeps them; Tardis keeps them
/// through leases. Neither policy should pay a refill, so this pins the
/// policies' fixed per-fence and per-hit overheads against each other.
fn bench_private(c: &mut Criterion) {
    fn setup<C: Coherence>() -> (Arc<Dsm<SimTransport, C>>, SimThread) {
        let (dsm, mut reader, _writer) = cluster::<C>();
        for p in 0..READ_PAGES {
            let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
        }
        for _ in 0..8 {
            dsm.si_fence(&mut reader);
            for p in 0..READ_PAGES {
                let _ = dsm.read_u64(&mut reader, GlobalAddr((2 * p + 1) * PAGE_BYTES));
            }
        }
        (dsm, reader)
    }
    let mut g = c.benchmark_group("coherence");
    {
        let (dsm, mut t) = setup::<CarinaSiSd>();
        g.bench_function(format!("private_{READ_PAGES}p/sisd"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    {
        let (dsm, mut t) = setup::<Tardis>();
        g.bench_function(format!("private_{READ_PAGES}p/tardis"), |b| {
            b.iter(|| {
                dsm.si_fence(&mut t);
                for p in 0..READ_PAGES {
                    let _ = dsm.read_u64(&mut t, GlobalAddr((2 * p + 1) * PAGE_BYTES));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_mostly, bench_private);
criterion_main!(benches);
