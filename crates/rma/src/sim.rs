//! The simulated backend: [`Transport`] implemented **directly on**
//! [`simnet::Interconnect`] and [`Endpoint`] directly on
//! [`simnet::SimThread`].
//!
//! There is deliberately no adapter struct. Every trait method forwards to
//! the inherent method of the same shape (all three atomics map onto
//! [`Interconnect::rdma_atomic`], which is how the simulator already priced
//! them), so a program driven through the trait performs the *same sequence
//! of the same calls* as one driven through the concrete types — virtual-time
//! results are bit-for-bit identical by construction, and
//! `examples/determinism_probe.rs` checks it empirically.

use crate::transport::{Completion, Endpoint, Transport, VerbError, VerbToken};
use simnet::{
    ClusterTopology, CostModel, Interconnect, NetStats, NodeId, PerNodeSnapshot, SimThread,
    ThreadLoc,
};
use std::sync::Arc;

/// The virtual-time backend *is* the interconnect.
pub type SimTransport = Interconnect;

/// The virtual-time endpoint *is* the simulated thread.
pub type SimEndpoint = SimThread;

impl Transport for Interconnect {
    type Endpoint = SimThread;

    fn endpoint(this: &Arc<Self>, loc: ThreadLoc) -> SimThread {
        SimThread::new(loc, this.clone())
    }

    #[inline]
    fn topology(&self) -> &ClusterTopology {
        Interconnect::topology(self)
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        Interconnect::cost(self)
    }

    #[inline]
    fn stats(&self) -> &NetStats {
        Interconnect::stats(self)
    }

    fn per_node_stats(&self) -> Vec<PerNodeSnapshot> {
        Interconnect::per_node_stats(self)
    }

    fn reset_per_node_stats(&self) {
        Interconnect::reset_per_node_stats(self)
    }

    #[inline]
    fn rdma_read(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_read(self, from, target, at, bytes).into())
    }

    #[inline]
    fn rdma_write(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_write(self, from, target, at, bytes).into())
    }

    #[inline]
    fn rdma_write_batch(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        sizes: &[u64],
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_write_batch(self, from, target, at, sizes).into())
    }

    #[inline]
    fn rdma_fetch_or(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_atomic(self, from, target, at).into())
    }

    #[inline]
    fn rdma_fetch_add(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_atomic(self, from, target, at).into())
    }

    #[inline]
    fn rdma_cas(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(Interconnect::rdma_atomic(self, from, target, at).into())
    }

    #[inline]
    fn drained_at(&self, node: NodeId) -> u64 {
        self.nic_drained_at(node)
    }

    // The simulator injects no faults, but holds the recorder so endpoints
    // created later open single-writer lanes against it (the fences bench
    // also constructs `SimThread::new` directly and gets the same lane).
    fn attach_recorder(&self, recorder: Arc<obs::FlightRecorder>) {
        Interconnect::attach_recorder(self, recorder);
    }
}

impl Endpoint for SimThread {
    #[inline]
    fn loc(&self) -> ThreadLoc {
        SimThread::loc(self)
    }

    #[inline]
    fn now(&self) -> u64 {
        SimThread::now(self)
    }

    #[inline]
    fn now_secs(&self) -> f64 {
        SimThread::now_secs(self)
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        self.net().cost()
    }

    #[inline]
    fn compute(&mut self, cycles: u64) {
        SimThread::compute(self, cycles)
    }

    #[inline]
    fn dram_access(&mut self) {
        SimThread::dram_access(self)
    }

    #[inline]
    fn fault_trap(&mut self) {
        SimThread::fault_trap(self)
    }

    #[inline]
    fn merge(&mut self, t: u64) {
        SimThread::merge(self, t)
    }

    #[inline]
    fn lyra_lane(&mut self) -> Option<&mut obs::Lane> {
        SimThread::lyra_lane(self)
    }

    // The blocking read/write/batch verbs use the trait's default
    // issue + wait + merge wrappers, which reduce to exactly the inherent
    // arithmetic (issue at `now`, merge `initiator_done`).

    #[inline]
    fn issue_read(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken {
        VerbToken::from_raw(SimThread::issue_read(self, target, bytes, not_before))
    }

    #[inline]
    fn issue_write(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken {
        VerbToken::from_raw(SimThread::issue_write(self, target, bytes, not_before))
    }

    #[inline]
    fn issue_write_batch(&mut self, target: NodeId, sizes: &[u64], not_before: u64) -> VerbToken {
        VerbToken::from_raw(SimThread::issue_write_batch(self, target, sizes, not_before))
    }

    #[inline]
    fn poll(&mut self, token: VerbToken) -> Option<Result<Completion, VerbError>> {
        // Timing is computed eagerly at issue, so completions are always
        // ready by the time anyone polls.
        Some(Ok(SimThread::resolve_issued(self, token.raw()).into()))
    }

    #[inline]
    fn rdma_fetch_or(&mut self, target: NodeId) -> Result<(), VerbError> {
        SimThread::rdma_atomic(self, target);
        Ok(())
    }

    #[inline]
    fn rdma_fetch_add(&mut self, target: NodeId) -> Result<(), VerbError> {
        SimThread::rdma_atomic(self, target);
        Ok(())
    }

    #[inline]
    fn rdma_cas(&mut self, target: NodeId) -> Result<(), VerbError> {
        SimThread::rdma_atomic(self, target);
        Ok(())
    }

    #[inline]
    fn wait_drain(&mut self, target: NodeId) {
        SimThread::wait_nic_drain(self, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Arc<SimTransport> {
        Interconnect::new(ClusterTopology::tiny(2), CostModel::paper_2011())
    }

    /// The trait path and the inherent path must be the same arithmetic.
    #[test]
    fn trait_verbs_match_inherent_verbs() {
        let a = fabric();
        let b = fabric();
        let loc = a.topology().loc(NodeId(0), 0);
        let t1 = Interconnect::rdma_read(&a, loc, NodeId(1), 0, 4096);
        let c1 = Transport::rdma_read(&*b, loc, NodeId(1), 0, 4096).unwrap();
        assert_eq!(t1.initiator_done, c1.initiator_done);
        assert_eq!(t1.settled, c1.settled);

        let t2 = Interconnect::rdma_write(&a, loc, NodeId(1), 500, 64);
        let c2 = Transport::rdma_write(&*b, loc, NodeId(1), 500, 64).unwrap();
        assert_eq!((t2.initiator_done, t2.settled), (c2.initiator_done, c2.settled));

        let t3 = Interconnect::rdma_atomic(&a, loc, NodeId(1), 900);
        let c3 = Transport::rdma_fetch_or(&*b, loc, NodeId(1), 900).unwrap();
        assert_eq!((t3.initiator_done, t3.settled), (c3.initiator_done, c3.settled));
    }

    /// All three atomic flavors price identically (the simulator models one
    /// "remote atomic" footprint). Fresh fabrics so NIC timelines don't
    /// serialize the probes.
    #[test]
    fn atomic_flavors_price_identically() {
        let loc = ClusterTopology::tiny(2).loc(NodeId(0), 0);
        let or = Transport::rdma_fetch_or(&*fabric(), loc, NodeId(1), 0).unwrap();
        let add = Transport::rdma_fetch_add(&*fabric(), loc, NodeId(1), 0).unwrap();
        let cas = Transport::rdma_cas(&*fabric(), loc, NodeId(1), 0).unwrap();
        assert_eq!(or, add);
        assert_eq!(add, cas);
    }

    /// The blocking trait verb and a hand-rolled issue + wait + merge are
    /// the same arithmetic (the blocking verb *is* that wrapper).
    #[test]
    fn blocking_verbs_are_issue_plus_wait() {
        let (na, nb) = (fabric(), fabric());
        let loc = na.topology().loc(NodeId(0), 0);
        let mut a = <SimTransport as Transport>::endpoint(&na, loc);
        let mut b = <SimTransport as Transport>::endpoint(&nb, loc);
        let settled = Endpoint::rdma_write(&mut a, NodeId(1), 4096).unwrap();
        let base = Endpoint::now(&b);
        let tok = Endpoint::issue_write(&mut b, NodeId(1), 4096, base);
        let c = Endpoint::wait(&mut b, tok).unwrap();
        Endpoint::merge(&mut b, c.initiator_done);
        assert_eq!(Endpoint::now(&a), Endpoint::now(&b));
        assert_eq!(settled, c.settled);
    }

    #[test]
    fn endpoint_is_a_sim_thread() {
        let net = fabric();
        let loc = net.topology().loc(NodeId(0), 0);
        let mut e = <SimTransport as Transport>::endpoint(&net, loc);
        Endpoint::compute(&mut e, 100);
        Endpoint::rdma_read(&mut e, NodeId(1), 4096).unwrap();
        let c = net.cost();
        assert_eq!(
            Endpoint::now(&e),
            100 + 2 * c.network_latency + c.transfer_cycles(4096)
        );
    }
}
