//! Volans: cluster membership for elastic clusters.
//!
//! The membership view is the one piece of cluster-wide control state the
//! paper's design never needed: which nodes are part of the cluster *right
//! now*, stamped with a monotonically increasing **epoch** that bumps on
//! every join or departure. It is deliberately tiny — an epoch counter, an
//! alive bitset, and a per-node record of the newest epoch each node has
//! observed — because everything expensive about a membership change
//! (re-homing pages, scrubbing caches) belongs to the protocol layer above.
//!
//! Two properties the layers above rely on:
//!
//! - **Epoch monotonicity.** [`Membership::observe`] is a `fetch_max`, so a
//!   node's observed epoch never moves backwards, and [`Membership::admit`]
//!   rejects any verb stamped with an epoch older than what its target has
//!   already observed. No verb from epoch *e* lands after epoch *e + 1* has
//!   been observed at its target (proptested in `tests/`).
//! - **Deterministic rendezvous re-homing.** [`rendezvous_home`] is
//!   highest-random-weight (HRW) hashing over the survivor set: a pure
//!   function of `(page, survivors)`, balanced across survivors, and stable
//!   under permutation of the death order — a page's final home after any
//!   sequence of departures is its initial home if that node survived, else
//!   the HRW argmax over the final survivor set.

use crate::retry::splitmix64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum cluster size the alive bitset covers (matches the directory
/// metadata bound in the coherence layer).
pub const MAX_NODES: usize = 128;

/// The cluster membership view: epoch, alive set, per-node observations.
///
/// All methods are lock-free; transitions ([`Membership::mark_dead`],
/// [`Membership::mark_alive`], [`Membership::bump_epoch`]) are expected to
/// be serialized by the caller (the DSM holds a transition lock around the
/// full failover sweep), while the read side ([`Membership::is_alive`],
/// [`Membership::epoch`]) is hit on verb paths and stays a relaxed load.
#[derive(Debug)]
pub struct Membership {
    /// Bumped once per membership change. Epoch 0 means "no change has
    /// ever happened" — the hot paths use that to skip all checks.
    epoch: AtomicU64,
    /// Bit `n` of word `n / 64` set = node `n` is alive.
    alive: [AtomicU64; MAX_NODES / 64],
    /// Newest epoch each node has observed (fetch_max discipline).
    observed: Vec<AtomicU64>,
    nodes: usize,
}

impl Membership {
    /// A cluster of `nodes` nodes, all alive, at epoch 0.
    pub fn new(nodes: usize) -> Self {
        assert!((1..=MAX_NODES).contains(&nodes), "membership supports 1..=128 nodes");
        let alive = [AtomicU64::new(0), AtomicU64::new(0)];
        for n in 0..nodes {
            alive[n / 64].fetch_or(1 << (n % 64), Ordering::Relaxed);
        }
        Membership {
            epoch: AtomicU64::new(0),
            alive,
            observed: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            nodes,
        }
    }

    /// Total nodes the view covers (alive or not).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The current membership epoch (0 = never changed).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the epoch by one; returns the new epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Is `node` currently part of the cluster?
    #[inline]
    pub fn is_alive(&self, node: u16) -> bool {
        let n = node as usize;
        n < self.nodes && self.alive[n / 64].load(Ordering::Relaxed) & (1 << (n % 64)) != 0
    }

    /// How many nodes are currently alive.
    pub fn nodes_alive(&self) -> usize {
        self.alive
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// The alive node ids, ascending (a deterministic survivor ordering for
    /// the rendezvous rule).
    pub fn alive_nodes(&self) -> Vec<u16> {
        (0..self.nodes as u16).filter(|&n| self.is_alive(n)).collect()
    }

    /// Remove `node` from the alive set. Returns whether it *was* alive
    /// (false = someone else already declared it; the transition is
    /// idempotent). Does not bump the epoch — the caller bumps once after
    /// the whole failover sweep so the new epoch implies the re-homing it
    /// announces has happened.
    pub fn mark_dead(&self, node: u16) -> bool {
        let n = node as usize;
        assert!(n < self.nodes, "node {node} out of range");
        let prev = self.alive[n / 64].fetch_and(!(1 << (n % 64)), Ordering::AcqRel);
        prev & (1 << (n % 64)) != 0
    }

    /// Add `node` to the alive set (online join). Returns whether it was
    /// previously dead.
    pub fn mark_alive(&self, node: u16) -> bool {
        let n = node as usize;
        assert!(n < self.nodes, "node {node} out of range");
        let prev = self.alive[n / 64].fetch_or(1 << (n % 64), Ordering::AcqRel);
        prev & (1 << (n % 64)) == 0
    }

    /// Record that `node` has observed the current epoch (fetch_max: the
    /// observation never moves backwards). Returns the epoch it observed.
    pub fn observe(&self, node: u16) -> u64 {
        let e = self.epoch();
        self.observed[node as usize].fetch_max(e, Ordering::AcqRel);
        e
    }

    /// The newest epoch `node` has observed.
    #[inline]
    pub fn observed(&self, node: u16) -> u64 {
        self.observed[node as usize].load(Ordering::Acquire)
    }

    /// Would a verb stamped at `verb_epoch` be admitted at `target`? A verb
    /// from a superseded epoch (older than anything the target has already
    /// observed) must be rejected: its issuer may not yet know about a
    /// re-homing the target has already acted on.
    #[inline]
    pub fn admit(&self, verb_epoch: u64, target: u16) -> bool {
        verb_epoch >= self.observed(target)
    }
}

/// Highest-random-weight (rendezvous) choice of a home for `page` among
/// `alive` survivors: the survivor with the largest keyed hash wins. Pure
/// function of its arguments — every node computes the same answer with no
/// coordination — and removing a non-winning node never changes the winner,
/// which is what makes sequential failovers land on the same final homes in
/// any death order.
///
/// # Panics
/// Panics if `alive` is empty (there is no one left to home the page).
pub fn rendezvous_home(page: u64, alive: &[u16]) -> u16 {
    assert!(!alive.is_empty(), "rendezvous over an empty survivor set");
    let mut best = (0u64, 0u16);
    let mut found = false;
    for &n in alive {
        let w = splitmix64(
            page.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((n as u64) + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93)),
        );
        if !found || (w, n) > best {
            best = (w, n);
            found = true;
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_alive_at_epoch_zero() {
        let m = Membership::new(4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.nodes_alive(), 4);
        assert_eq!(m.alive_nodes(), vec![0, 1, 2, 3]);
        assert!((0..4).all(|n| m.is_alive(n)));
        assert!(!m.is_alive(4), "out-of-range nodes are never alive");
    }

    #[test]
    fn death_is_idempotent_and_bumps_only_once() {
        let m = Membership::new(3);
        assert!(m.mark_dead(1), "first declaration transitions");
        assert!(!m.mark_dead(1), "second declaration is a no-op");
        assert_eq!(m.bump_epoch(), 1);
        assert_eq!(m.nodes_alive(), 2);
        assert_eq!(m.alive_nodes(), vec![0, 2]);
    }

    #[test]
    fn join_restores_a_dead_node() {
        let m = Membership::new(3);
        m.mark_dead(2);
        m.bump_epoch();
        assert!(m.mark_alive(2));
        assert!(!m.mark_alive(2), "joining an alive node is a no-op");
        assert_eq!(m.bump_epoch(), 2);
        assert_eq!(m.nodes_alive(), 3);
    }

    #[test]
    fn observations_are_monotone_and_gate_admission() {
        let m = Membership::new(2);
        assert!(m.admit(0, 1), "epoch-0 verbs land before any change");
        m.mark_dead(0);
        m.bump_epoch();
        assert_eq!(m.observe(1), 1);
        assert!(!m.admit(0, 1), "superseded-epoch verb must be rejected");
        assert!(m.admit(1, 1));
        // Observation never regresses.
        assert_eq!(m.observed(1), 1);
        m.observe(1);
        assert_eq!(m.observed(1), 1);
    }

    #[test]
    fn rendezvous_is_deterministic_and_member_valued() {
        let alive = [0u16, 2, 5];
        for p in 0..1000u64 {
            let h = rendezvous_home(p, &alive);
            assert_eq!(h, rendezvous_home(p, &alive));
            assert!(alive.contains(&h));
        }
    }

    #[test]
    fn rendezvous_ignores_survivor_ordering() {
        let a = [0u16, 3, 4, 7];
        let b = [7u16, 0, 4, 3];
        for p in 0..1000u64 {
            assert_eq!(rendezvous_home(p, &a), rendezvous_home(p, &b));
        }
    }

    #[test]
    fn rendezvous_balances_within_a_quarter() {
        let alive = [0u16, 1, 3, 4, 6];
        let mut counts = [0u64; 8];
        let pages = 8192u64;
        for p in 0..pages {
            counts[rendezvous_home(p, &alive) as usize] += 1;
        }
        let fair = pages as f64 / alive.len() as f64;
        for &n in &alive {
            let c = counts[n as usize] as f64;
            assert!(
                (c - fair).abs() <= fair * 0.25,
                "node {n} holds {c} of {pages} pages (fair share {fair})"
            );
        }
    }

    #[test]
    fn removing_a_loser_never_moves_the_winner() {
        let all = [0u16, 1, 2, 3, 4, 5];
        for p in 0..500u64 {
            let w = rendezvous_home(p, &all);
            for &gone in &all {
                if gone == w {
                    continue;
                }
                let rest: Vec<u16> = all.iter().copied().filter(|&n| n != gone).collect();
                assert_eq!(rendezvous_home(p, &rest), w);
            }
        }
    }
}
