//! # rma — the pluggable RMA transport layer
//!
//! Carina's whole design rests on one observation (paper §3): every protocol
//! action is *just an RMA verb* — a one-sided read, a posted write, a remote
//! fetch-or / fetch-add / CAS — issued by the requesting node against memory
//! it does not own, with no code running at the target. This crate cuts that
//! observation into a seam: the [`Transport`] trait is the verb surface the
//! paper assumes from MPI-3 RMA, and everything above it (carina's protocol,
//! vela's synchronization, argo's machine, the workloads) is generic over it.
//!
//! Two backends ship:
//!
//! * [`SimTransport`] — the virtual-time simulator. It *is*
//!   [`simnet::Interconnect`] (a type alias, with the trait implemented
//!   directly on it), so the adapter adds zero state and zero arithmetic:
//!   results are bit-for-bit identical to calling the interconnect directly.
//!   `examples/determinism_probe.rs` holds that contract.
//! * [`NativeTransport`] — a real shared-memory backend with **no virtual
//!   clock**. Verbs complete instantly in virtual time (the data plane in
//!   `mem` is host shared memory either way) and the identical protocol
//!   executes on host threads at wall-clock speed, so workloads can be
//!   benchmarked as real programs rather than simulated ones.
//!
//! Dispatch is static throughout: no `dyn Transport` exists on the read-hit
//! or fence hot paths. Generic structs default their parameter to
//! [`SimTransport`], so pre-existing call sites compile unchanged.
//!
//! ## Puppis: fallibility, faults, and retry
//!
//! Every verb on the trait surface returns `Result<_, VerbError>`. The two
//! concrete backends never fail, but [`FaultyTransport`] wraps either of
//! them with a seeded, reproducible [`FaultPlan`] (drops, timeouts,
//! duplicates, latency spikes, NIC brownouts), and [`RetryPolicy`] gives
//! the layers above a deterministic capped-exponential-backoff answer to
//! those failures — safe precisely because Carina's one-sided verbs are
//! idempotent.

pub mod fault;
pub mod membership;
pub mod native;
pub mod retry;
pub mod sim;
pub mod transport;

pub use fault::{Brownout, FaultPlan, FaultSnapshot, FaultyEndpoint, FaultyTransport};
pub use membership::{rendezvous_home, Membership};
pub use native::{NativeEndpoint, NativeTransport};
pub use retry::{splitmix64, Attempt, AttemptSeq, Retried, RetryExhausted, RetryPolicy, VerbClass};
pub use sim::{SimEndpoint, SimTransport};
pub use transport::{Completion, Endpoint, Transport, VerbError, VerbToken};

// Kept re-exported so call sites migrating to the transport layer can name
// the concrete simulator types through one crate.
pub use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread, ThreadLoc};

// Lyra: the span handle the verb layer threads through issue/poll/retry,
// re-exported so transport users need not name `obs` directly.
pub use obs::SpanId;
