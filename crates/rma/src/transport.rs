//! The verb surface: [`Transport`] (shared fabric), [`Endpoint`] (per-thread
//! issue port), and [`Completion`] (timing handle).
//!
//! The split mirrors MPI-3 RMA and InfiniBand verbs: a process-wide fabric
//! object knows topology, cost constants, and global accounting; each thread
//! owns an endpoint through which it issues verbs and on which any notion of
//! "time" (virtual cycles for the simulator, nothing for native) accrues.

use obs::SpanId;
use simnet::net::VerbTiming;
use simnet::{ClusterTopology, CostModel, NetStats, NodeId, PerNodeSnapshot, ThreadLoc};
use std::fmt::{self, Debug};
use std::sync::Arc;

/// Why a verb did not complete.
///
/// Real fabrics surface these as work-completion error CQEs; here they come
/// from [`crate::FaultyTransport`] (the concrete backends are infallible).
/// Every variant is transient from the protocol's point of view: Carina's
/// verbs are idempotent, so the only correct reactions are *reissue* or
/// *give up* — never a protocol-level repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbError {
    /// The verb was issued but no completion arrived in time.
    Timeout,
    /// The target NIC is browned out (backpressured / resetting); retry
    /// after a backoff.
    NicStall,
    /// The posted payload was lost in the fabric.
    Dropped,
    /// The initiator tore the verb down before completion.
    Cancelled,
    /// The target has left the membership view: the verb was rejected
    /// before issue (Volans fail-fast). Unlike the transient variants, this
    /// one is *not* worth retrying against the same target — the correct
    /// reaction is to re-route after the failover re-homing.
    Departed,
}

impl VerbError {
    /// Stable snake_case name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            VerbError::Timeout => "timeout",
            VerbError::NicStall => "nic_stall",
            VerbError::Dropped => "dropped",
            VerbError::Cancelled => "cancelled",
            VerbError::Departed => "departed",
        }
    }
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::error::Error for VerbError {}

/// Outcome of a verb: when the initiator may continue and when the payload is
/// settled at the target.
///
/// Reads and atomics block the initiator until the response returns, so both
/// fields coincide. Posted writes unblock the initiator as soon as the payload
/// is handed to the NIC; `settled` is the later instant at which the data is
/// globally visible — SD fences collect the max of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Completion {
    /// Time at which the initiating thread unblocks.
    pub initiator_done: u64,
    /// Time at which the payload is fully deposited at the target.
    pub settled: u64,
}

impl Completion {
    /// A verb that is over the instant it is issued (native backend).
    #[inline]
    pub fn instant(at: u64) -> Self {
        Completion {
            initiator_done: at,
            settled: at,
        }
    }
}

impl From<VerbTiming> for Completion {
    #[inline]
    fn from(t: VerbTiming) -> Self {
        Completion {
            initiator_done: t.initiator_done,
            settled: t.settled,
        }
    }
}

/// Opaque handle to a verb issued through [`Endpoint::issue_read`] /
/// [`Endpoint::issue_write`] / [`Endpoint::issue_write_batch`], resolved
/// exactly once by [`Endpoint::poll`] or [`Endpoint::wait`].
///
/// Mirrors a work-request ID on an RDMA send queue: issuing never blocks
/// and never fails (even on a faulty fabric — errors surface as completion
/// events, like error CQEs), and the initiator's clock does not advance
/// until it waits on the completion and merges it. Tokens are endpoint-
/// local: resolving one on any other endpoint, or twice, is a caller bug
/// and panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerbToken(u64);

impl VerbToken {
    /// Wrap a backend-local raw handle (slot index + generation).
    pub(crate) fn from_raw(raw: u64) -> Self {
        VerbToken(raw)
    }

    /// The backend-local raw handle.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

/// A generation-tagged slab of unresolved verbs, shared by the endpoint
/// implementations in this crate. Slots recycle through a free list; each
/// recycle bumps the slot's generation so a consumed or foreign token is
/// detected (and panics) instead of resolving some other verb.
#[derive(Debug, Clone)]
pub(crate) struct TokenSlab<P> {
    slots: Vec<(u32, Option<P>)>,
    free: Vec<u32>,
}

impl<P> Default for TokenSlab<P> {
    fn default() -> Self {
        TokenSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<P> TokenSlab<P> {
    pub(crate) fn insert(&mut self, payload: P) -> VerbToken {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].1 = Some(payload);
                s
            }
            None => {
                self.slots.push((0, Some(payload)));
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].0;
        VerbToken::from_raw((u64::from(generation) << 32) | u64::from(slot))
    }

    pub(crate) fn take(&mut self, token: VerbToken) -> P {
        let raw = token.raw();
        let slot = (raw & 0xFFFF_FFFF) as usize;
        let generation = (raw >> 32) as u32;
        let entry = self
            .slots
            .get_mut(slot)
            .filter(|(g, _)| *g == generation)
            .and_then(|(_, p)| p.take());
        let Some(payload) = entry else {
            panic!("stale or foreign verb token (raw {raw:#x})");
        };
        self.slots[slot].0 = self.slots[slot].0.wrapping_add(1);
        self.free.push(slot as u32);
        payload
    }
}

/// A backend fabric: the process-wide half of the transport.
///
/// All verbs are *one-sided*: no code executes at the target node. The data
/// plane (actually moving bytes) lives in the `mem` crate and is host shared
/// memory under every backend; a `Transport` implementation decides only what
/// the verb *costs* and how it is accounted.
///
/// `at` parameters and returned [`Completion`]s are in the backend's own time
/// base — virtual cycles for [`crate::SimTransport`], always zero for
/// [`crate::NativeTransport`].
pub trait Transport: Send + Sync + Debug + 'static {
    /// The per-thread issue port paired with this fabric.
    type Endpoint: Endpoint;

    /// Open an endpoint for the thread placed at `loc`.
    ///
    /// An associated function rather than a method because endpoints hold an
    /// owning handle to the fabric (`&Arc<Self>` is not a stable receiver).
    fn endpoint(this: &Arc<Self>, loc: ThreadLoc) -> Self::Endpoint
    where
        Self: Sized;

    /// Cluster shape this fabric spans.
    fn topology(&self) -> &ClusterTopology;

    /// Cost constants. Meaningful timing for the simulator; reference
    /// constants (handler costs, byte sizes) for native.
    fn cost(&self) -> &CostModel;

    /// Global verb counters, shared by all endpoints.
    fn stats(&self) -> &NetStats;

    /// Per-node traffic snapshot (who is the hotspot?).
    fn per_node_stats(&self) -> Vec<PerNodeSnapshot>;

    /// Reset the per-node counters ([`NetStats::reset`] resets the global
    /// ones).
    fn reset_per_node_stats(&self);

    /// Blocking one-sided read of `bytes` from `target`'s memory.
    ///
    /// All verbs are fallible at the trait surface: the concrete backends
    /// never fail, but wrappers such as [`crate::FaultyTransport`] may
    /// return a [`VerbError`], and every caller must decide between reissue
    /// and giving up (verbs are idempotent, so reissue is always safe).
    fn rdma_read(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError>;

    /// Posted one-sided write of `bytes` into `target`'s memory. The
    /// initiator unblocks at `initiator_done`; the payload is visible at
    /// `settled`.
    fn rdma_write(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError>;

    /// Home-coalesced posted write: `sizes.len()` payloads to the same
    /// `target` behind a single doorbell. Must account exactly like the
    /// equivalent sequence of [`Self::rdma_write`]s (one write + its bytes
    /// per payload); backends differ only in timing and host-side cost. The
    /// default chains single writes, so every backend is correct without
    /// opting in. A failure partway leaves the earlier payloads delivered —
    /// callers reissue the whole batch, which is safe because payloads are
    /// idempotent.
    fn rdma_write_batch(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        sizes: &[u64],
    ) -> Result<Completion, VerbError> {
        let mut now = at;
        let mut settled = at;
        for &bytes in sizes {
            let c = self.rdma_write(from, target, now, bytes)?;
            now = c.initiator_done;
            settled = settled.max(c.settled);
        }
        Ok(Completion {
            initiator_done: now,
            settled,
        })
    }

    /// Whether SD fences should coalesce their drain into per-home
    /// [`Self::rdma_write_batch`] calls when the protocol leaves the choice
    /// to the backend (`BatchDrain::Auto` in the protocol's config). The
    /// simulator declines — its per-page path is the calibrated,
    /// bit-reproducible one — while backends whose verb issue has real
    /// host-side cost opt in.
    fn prefers_batched_drain(&self) -> bool {
        false
    }

    /// Blocking remote fetch-or on a directory word (reader/writer
    /// registration, paper §3.2).
    fn rdma_fetch_or(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError>;

    /// Blocking remote fetch-add on a synchronization word (ticket locks,
    /// barrier counters).
    fn rdma_fetch_add(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError>;

    /// Blocking remote compare-and-swap on a synchronization word.
    fn rdma_cas(&self, from: ThreadLoc, target: NodeId, at: u64) -> Result<Completion, VerbError>;

    /// Time at which `node`'s NIC has drained everything posted so far; the
    /// completion side of an SD fence. Always 0 on backends without queues.
    fn drained_at(&self, node: NodeId) -> u64;

    /// Hand fault-injecting wrappers a flight-recorder handle so the fates
    /// they decide are recorded against the spans they hit
    /// ([`crate::FaultyTransport`] overrides this; first attach wins). The
    /// concrete backends inject nothing and ignore it — the DSM layer calls
    /// this unconditionally at construction.
    fn attach_recorder(&self, recorder: Arc<obs::FlightRecorder>) {
        let _ = recorder;
    }
}

/// A per-thread issue port: placement, the thread's time base, and verb
/// issue methods that advance it.
///
/// Each OS thread owns exactly one endpoint and mutates it without sharing;
/// time crosses threads only as plain `u64` stamps through synchronization
/// structures (which [`Endpoint::merge`] folds back in).
pub trait Endpoint: Send + Clone + Debug + 'static {
    /// Placement of this thread in the cluster topology.
    fn loc(&self) -> ThreadLoc;

    /// The node this thread runs on.
    #[inline]
    fn node(&self) -> NodeId {
        self.loc().node
    }

    /// Current time on this endpoint's time base (virtual cycles for the
    /// simulator, always 0 for native).
    fn now(&self) -> u64;

    /// The *observability* clock: a monotonic stamp for latency histograms
    /// and trace timestamps. Virtual cycles on the simulator (same as
    /// [`Endpoint::now`]); wall nanoseconds since process start on the
    /// native backend, whose protocol clock is pinned at 0. Differences of
    /// `obs_now()` stamps are meaningful durations on every backend;
    /// absolute values are backend-specific.
    #[inline]
    fn obs_now(&self) -> u64 {
        self.now()
    }

    /// [`Endpoint::now`] in seconds at the cost model's CPU frequency.
    fn now_secs(&self) -> f64;

    /// The fabric's cost constants.
    fn cost(&self) -> &CostModel;

    /// Charge `cycles` of local computation.
    fn compute(&mut self, cycles: u64);

    /// Charge one local DRAM access (page-cache hit missing CPU caches).
    fn dram_access(&mut self);

    /// Charge a page-fault trap into the DSM runtime (models SIGSEGV entry).
    fn fault_trap(&mut self);

    /// Fold in an externally observed timestamp: this thread cannot proceed
    /// before `t` (lock hand-off, barrier exit, fence settle point).
    fn merge(&mut self, t: u64);

    // --- Lyra span plumbing -----------------------------------------------
    //
    // Purely observational: protocol sites attach the span of the operation
    // they are servicing, and fault-injecting wrappers stamp it onto the
    // fates they decide, so a flight-recorder timeline can link every verb
    // (and every injected fault) back to its parent operation. Span ids
    // never feed back into timing or protocol decisions.

    /// Attach the Lyra span of the protocol operation about to issue verbs
    /// through this endpoint ([`SpanId::NONE`] detaches). Default: ignored.
    #[inline]
    fn set_span(&mut self, _span: SpanId) {}

    /// The span last attached via [`Endpoint::set_span`], or
    /// [`SpanId::NONE`] on endpoints without storage.
    #[inline]
    fn current_span(&self) -> SpanId {
        SpanId::NONE
    }

    /// This endpoint's single-writer Lyra lane, if the backend opened one
    /// against an attached flight recorder. Protocol hot paths prefer the
    /// lane (plain stores, no atomic read-modify-writes) and fall back to
    /// the recorder's shared multi-writer ring when absent.
    #[inline]
    fn lyra_lane(&mut self) -> Option<&mut obs::Lane> {
        None
    }

    // --- Asynchronous verb surface (completion-queue model) ---------------
    //
    // `issue_*` post a verb and return immediately with a token; `poll` /
    // `wait` resolve tokens later. Issuing neither advances nor consults the
    // caller-visible clock: on clocked backends the verb enters the fabric at
    // `max(now, not_before)`, and the initiator only pays for it when it
    // merges the completion's `initiator_done`. This is what lets a caller
    // put many verbs in flight and pay only for the slowest.

    /// Post a one-sided read of `bytes` from `target`, entering the fabric
    /// no earlier than `not_before` (clocked backends use
    /// `max(now, not_before)`; unclocked ones ignore it).
    fn issue_read(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken;

    /// Post a one-sided write of `bytes` to `target` (see
    /// [`Endpoint::issue_read`] for the `not_before` contract).
    fn issue_write(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken;

    /// Post a home-coalesced batch write behind one doorbell (see
    /// [`Transport::rdma_write_batch`] for accounting semantics).
    fn issue_write_batch(&mut self, target: NodeId, sizes: &[u64], not_before: u64) -> VerbToken;

    /// Non-blocking completion check. `None` means still in flight; `Some`
    /// consumes the token and yields the verb's outcome. Does **not** merge
    /// anything into the endpoint's clock — the caller decides when (and
    /// whether) to pay for the completion via [`Endpoint::merge`].
    fn poll(&mut self, token: VerbToken) -> Option<Result<Completion, VerbError>>;

    /// Block the *host* thread until `token` resolves, consuming it. Like
    /// [`Endpoint::poll`] this never touches the endpoint's clock: waiting
    /// on a completion is free until the caller merges it.
    fn wait(&mut self, token: VerbToken) -> Result<Completion, VerbError> {
        loop {
            if let Some(r) = self.poll(token) {
                return r;
            }
            std::hint::spin_loop();
        }
    }

    // --- Blocking verb surface (issue + wait + merge) ---------------------

    /// Blocking one-sided read of `bytes` from `target`'s memory.
    ///
    /// Endpoint verbs are fallible like the fabric-level ones; on `Err` the
    /// endpoint's clock has *not* advanced past the failed verb, so the
    /// caller may charge a backoff and reissue. The default body is the thin
    /// wrapper every backend's blocking verb reduces to: issue at `now`,
    /// wait, merge the completion.
    fn rdma_read(&mut self, target: NodeId, bytes: u64) -> Result<(), VerbError> {
        let token = self.issue_read(target, bytes, self.now());
        let c = self.wait(token)?;
        self.merge(c.initiator_done);
        Ok(())
    }

    /// Posted one-sided write of `bytes` to `target`'s memory; returns the
    /// settle stamp (SD fences collect the max of these).
    fn rdma_write(&mut self, target: NodeId, bytes: u64) -> Result<u64, VerbError> {
        let token = self.issue_write(target, bytes, self.now());
        let c = self.wait(token)?;
        self.merge(c.initiator_done);
        Ok(c.settled)
    }

    /// Posted batch write of `sizes.len()` payloads to `target` behind one
    /// doorbell; returns the settle stamp of the whole batch.
    fn rdma_write_batch(&mut self, target: NodeId, sizes: &[u64]) -> Result<u64, VerbError> {
        let token = self.issue_write_batch(target, sizes, self.now());
        let c = self.wait(token)?;
        self.merge(c.initiator_done);
        Ok(c.settled)
    }

    /// Blocking remote fetch-or (directory registration).
    fn rdma_fetch_or(&mut self, target: NodeId) -> Result<(), VerbError>;

    /// Blocking remote fetch-add (tickets, counters).
    fn rdma_fetch_add(&mut self, target: NodeId) -> Result<(), VerbError>;

    /// Blocking remote compare-and-swap.
    fn rdma_cas(&mut self, target: NodeId) -> Result<(), VerbError>;

    /// Block until `target`'s NIC has drained everything posted so far.
    fn wait_drain(&mut self, target: NodeId);
}
