//! Retry with capped exponential backoff and deterministic jitter.
//!
//! Carina's verbs are idempotent — a page fetch, a directory fetch-or, a
//! diff write all deposit the same bytes no matter how often they run — so
//! the protocol may reissue any failed verb without coordination. What
//! remains is *policy*: how many times, and how long to wait between
//! attempts. [`RetryPolicy`] answers both per [`VerbClass`], and keeps the
//! schedule a pure function of `(seed, class, attempt, salt)` so two runs
//! of the same program retry at identical virtual instants.

use crate::VerbError;
use obs::SpanId;
use std::fmt;

/// The protocol-level classes a remote verb can belong to. Budgets and
/// backoff are chosen per class: losing a drain batch mid-fence is worth
/// more patience than losing a best-effort notify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerbClass {
    /// Blocking page (or line) fetch on a read miss.
    PageFetch,
    /// Directory word fetch-or / fetch-add (reader/writer registration).
    DirectoryAtomic,
    /// Posted downgrade notification to a sharer.
    Notify,
    /// Posted diff/page write-back to the home.
    Downgrade,
    /// Home-coalesced drain batch issued by an SD fence.
    DrainBatch,
    /// Lock CAS / handover write (HQDL, global ticket lock).
    LockAtomic,
    /// Synchronization flag publish / poll (barriers, DSM flags).
    FlagWrite,
}

impl VerbClass {
    /// All classes, in index order.
    pub const ALL: [VerbClass; 7] = [
        VerbClass::PageFetch,
        VerbClass::DirectoryAtomic,
        VerbClass::Notify,
        VerbClass::Downgrade,
        VerbClass::DrainBatch,
        VerbClass::LockAtomic,
        VerbClass::FlagWrite,
    ];

    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            VerbClass::PageFetch => "page_fetch",
            VerbClass::DirectoryAtomic => "directory_atomic",
            VerbClass::Notify => "notify",
            VerbClass::Downgrade => "downgrade",
            VerbClass::DrainBatch => "drain_batch",
            VerbClass::LockAtomic => "lock_atomic",
            VerbClass::FlagWrite => "flag_write",
        }
    }
}

impl fmt::Display for VerbClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64: the deterministic mixer behind backoff jitter and fault
/// schedules. Public so tests can predict schedules exactly.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One attempt handed to the operation closure by [`RetryPolicy::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0 for the first issue, 1 for the first retry, …
    pub index: u32,
    /// Backoff charged *before this attempt* (0 on the first issue).
    pub step: u64,
    /// Cumulative backoff across all attempts so far, including `step`.
    pub delay: u64,
}

/// A successful operation plus how hard it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retried<R> {
    pub value: R,
    /// Number of *re*-issues (0 = first attempt succeeded).
    pub retries: u32,
    /// Total backoff cycles charged across all retries.
    pub delay: u64,
}

/// The retry budget for a verb class ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryExhausted {
    pub class: VerbClass,
    /// Attempts made (= the class budget).
    pub attempts: u32,
    /// The error returned by the final attempt.
    pub last_error: VerbError,
    /// Total backoff cycles charged before giving up.
    pub delay: u64,
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verb failed after {} attempts (last error: {})",
            self.class, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for RetryExhausted {}

/// Capped exponential backoff with deterministic jitter, budgeted per
/// [`VerbClass`].
///
/// The backoff before retry `k` (1-based) is
/// `min(max_backoff_cycles, base_backoff_cycles << (k-1))` plus a jitter of
/// up to a quarter of that, derived from `(jitter_seed, class, k, salt)` by
/// [`splitmix64`] — no global state, no wall clock, so the schedule is
/// reproducible and callers can de-correlate sites via `salt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt budget per class, indexed by [`VerbClass::index`]. A budget
    /// of `n` means the verb is issued at most `n` times in total; budgets
    /// below 1 behave as 1.
    pub max_attempts: [u32; VerbClass::COUNT],
    /// Backoff before the first retry.
    pub base_backoff_cycles: u64,
    /// Ceiling on the exponential step (jitter may add up to 25% on top).
    pub max_backoff_cycles: u64,
    /// Seed folded into every jitter draw.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 10 attempts for every class, 1k-cycle base, 250k-cycle cap: the full
    /// schedule spends ~750k cycles (~0.3 ms at the paper's clock) before
    /// giving up, enough to ride out any plausible transient.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: [10; VerbClass::COUNT],
            base_backoff_cycles: 1_000,
            max_backoff_cycles: 250_000,
            jitter_seed: 0xA5A5_5A5A_0F0F_F0F0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every class gets exactly one attempt.
    pub fn never() -> Self {
        RetryPolicy {
            max_attempts: [1; VerbClass::COUNT],
            ..Self::default()
        }
    }

    /// Same budgets, different jitter stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Set one class's attempt budget.
    pub fn with_budget(mut self, class: VerbClass, attempts: u32) -> Self {
        self.max_attempts[class.index()] = attempts;
        self
    }

    /// The attempt budget for `class` (at least 1).
    #[inline]
    pub fn attempts(&self, class: VerbClass) -> u32 {
        self.max_attempts[class.index()].max(1)
    }

    /// Backoff cycles before retry number `retry` (1-based) of `class`.
    /// Deterministic in `(self, class, retry, salt)`.
    pub fn backoff_step(&self, class: VerbClass, retry: u32, salt: u64) -> u64 {
        debug_assert!(retry >= 1, "the first issue has no backoff");
        let shift = (retry - 1).min(63);
        let exp = self
            .base_backoff_cycles
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_cycles);
        let key = self
            .jitter_seed
            .wrapping_add((class.index() as u64) << 32)
            .wrapping_add(retry as u64)
            .wrapping_add(salt.rotate_left(17));
        let jitter = splitmix64(key) % (exp / 4 + 1);
        exp + jitter
    }

    /// The full attempt schedule for one verb at one call site, as a
    /// resumable iterator. This is [`RetryPolicy::run`]'s engine, split out
    /// so issue/poll callers — which issue a verb, go do other work, and
    /// only learn of the failure when they poll the completion — can walk
    /// the *identical* schedule across that gap.
    pub fn attempt_seq(&self, class: VerbClass, salt: u64) -> AttemptSeq {
        AttemptSeq {
            policy: *self,
            class,
            salt,
            next_index: 0,
            delay: 0,
            budget: self.attempts(class),
            span: SpanId::NONE,
        }
    }

    /// Drive `op` until it succeeds or the class budget runs out.
    ///
    /// `op` receives the [`Attempt`] so the caller decides how to *spend*
    /// the backoff: transport-level sites shift their `at` stamp by
    /// `attempt.delay`; endpoint-level sites charge `attempt.step` as local
    /// compute before reissuing. `salt` de-correlates jitter between call
    /// sites (pass the page/home/lock identity).
    pub fn run<R>(
        &self,
        class: VerbClass,
        salt: u64,
        mut op: impl FnMut(Attempt) -> Result<R, VerbError>,
    ) -> Result<Retried<R>, RetryExhausted> {
        let mut seq = self.attempt_seq(class, salt);
        loop {
            // The budget is at least 1, so the first `next()` always yields.
            let Some(attempt) = seq.next() else {
                unreachable!("attempt budget underflow");
            };
            match op(attempt) {
                Ok(value) => {
                    return Ok(Retried {
                        value,
                        retries: attempt.index,
                        delay: attempt.delay,
                    })
                }
                Err(last_error) => {
                    if seq.is_exhausted() {
                        return Err(seq.exhausted(last_error));
                    }
                }
            }
        }
    }
}

/// The deterministic attempt schedule of one verb: yields [`Attempt`]s in
/// order (index 0 first, backoff already accumulated into `delay`) until the
/// class budget runs out. Produced by [`RetryPolicy::attempt_seq`]; the
/// sequence is a pure function of `(policy, class, salt)`, so a caller that
/// issues attempt 0, parks the token, and resumes the schedule at poll time
/// retries at exactly the instants the blocking [`RetryPolicy::run`] loop
/// would have.
#[derive(Debug, Clone)]
pub struct AttemptSeq {
    policy: RetryPolicy,
    class: VerbClass,
    salt: u64,
    next_index: u32,
    delay: u64,
    budget: u32,
    /// The Lyra span of the operation this schedule retries for. Purely
    /// observational — not part of the schedule function, so attaching a
    /// span can never change when attempts happen.
    span: SpanId,
}

impl AttemptSeq {
    /// The verb class this schedule belongs to.
    #[inline]
    pub fn class(&self) -> VerbClass {
        self.class
    }

    /// Attach the parent operation's Lyra span (builder style).
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }

    /// The attached span, or [`SpanId::NONE`].
    #[inline]
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// The attempt index `next()` will hand out next (== attempts already
    /// handed out; flight-recorder records key retries off this).
    #[inline]
    pub fn next_index(&self) -> u32 {
        self.next_index
    }

    /// The next attempt, or `None` once the budget is spent.
    #[allow(clippy::should_implement_trait)] // not an Iterator: callers resume it statefully
    pub fn next(&mut self) -> Option<Attempt> {
        if self.next_index >= self.budget {
            return None;
        }
        let index = self.next_index;
        let step = if index == 0 {
            0
        } else {
            self.policy.backoff_step(self.class, index, self.salt)
        };
        self.delay += step;
        self.next_index += 1;
        Some(Attempt {
            index,
            step,
            delay: self.delay,
        })
    }

    /// Whether every attempt in the budget has been handed out.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.next_index >= self.budget
    }

    /// The terminal error once the schedule is spent (`attempts` = budget,
    /// `delay` = total backoff handed out) — exactly what
    /// [`RetryPolicy::run`] reports.
    pub fn exhausted(&self, last_error: VerbError) -> RetryExhausted {
        RetryExhausted {
            class: self.class,
            attempts: self.next_index,
            last_error,
            delay: self.delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_stable() {
        for (i, c) in VerbClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(VerbClass::COUNT, 7);
    }

    #[test]
    fn first_attempt_has_no_backoff() {
        let p = RetryPolicy::default();
        let r = p
            .run(VerbClass::PageFetch, 7, |a| {
                assert_eq!(a.index, 0);
                assert_eq!(a.step, 0);
                assert_eq!(a.delay, 0);
                Ok::<_, VerbError>(42)
            })
            .unwrap();
        assert_eq!(r.value, 42);
        assert_eq!(r.retries, 0);
        assert_eq!(r.delay, 0);
    }

    #[test]
    fn retries_until_budget_then_reports_last_error() {
        let p = RetryPolicy::default().with_budget(VerbClass::Notify, 3);
        let mut calls = 0;
        let err = p
            .run(VerbClass::Notify, 0, |_| {
                calls += 1;
                Err::<(), _>(VerbError::Dropped)
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(err.attempts, 3);
        assert_eq!(err.class, VerbClass::Notify);
        assert_eq!(err.last_error, VerbError::Dropped);
        assert!(err.delay > 0);
    }

    #[test]
    fn success_mid_schedule_reports_retry_count_and_delay() {
        let p = RetryPolicy::default();
        let mut failures = 2;
        let r = p
            .run(VerbClass::LockAtomic, 9, |a| {
                if failures > 0 {
                    failures -= 1;
                    Err(VerbError::Timeout)
                } else {
                    Ok(a.delay)
                }
            })
            .unwrap();
        assert_eq!(r.retries, 2);
        assert_eq!(r.value, r.delay);
        let expected = p.backoff_step(VerbClass::LockAtomic, 1, 9)
            + p.backoff_step(VerbClass::LockAtomic, 2, 9);
        assert_eq!(r.delay, expected);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_backoff_cycles: 100,
            max_backoff_cycles: 800,
            ..RetryPolicy::default()
        };
        // Strip jitter (≤ 25%) by checking the step is within [exp, 1.25*exp].
        for retry in 1..=8u32 {
            let exp = (100u64 << (retry - 1)).min(800);
            let s = p.backoff_step(VerbClass::Downgrade, retry, 3);
            assert!(s >= exp && s <= exp + exp / 4, "retry {retry}: step {s} vs exp {exp}");
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_salt() {
        let p = RetryPolicy::default();
        for retry in 1..=5 {
            assert_eq!(
                p.backoff_step(VerbClass::PageFetch, retry, 11),
                p.backoff_step(VerbClass::PageFetch, retry, 11)
            );
        }
        // Different salts (call sites) decorrelate.
        let a: Vec<u64> = (1..=5).map(|r| p.backoff_step(VerbClass::PageFetch, r, 1)).collect();
        let b: Vec<u64> = (1..=5).map(|r| p.backoff_step(VerbClass::PageFetch, r, 2)).collect();
        assert_ne!(a, b);
    }

    /// The resumable schedule is the same sequence `run` walks, attempt for
    /// attempt, including the terminal exhaustion report.
    #[test]
    fn attempt_seq_replays_run_schedule() {
        let p = RetryPolicy::default().with_budget(VerbClass::DrainBatch, 4);
        let mut from_run = Vec::new();
        let err = p
            .run(VerbClass::DrainBatch, 77, |a| {
                from_run.push(a);
                Err::<(), _>(VerbError::Timeout)
            })
            .unwrap_err();
        let mut seq = p.attempt_seq(VerbClass::DrainBatch, 77);
        let mut from_seq = Vec::new();
        while let Some(a) = seq.next() {
            from_seq.push(a);
        }
        assert_eq!(from_run, from_seq);
        assert!(seq.is_exhausted());
        assert_eq!(seq.exhausted(VerbError::Timeout), err);
    }

    #[test]
    fn zero_budget_behaves_as_one_attempt() {
        let p = RetryPolicy::default().with_budget(VerbClass::FlagWrite, 0);
        let mut calls = 0;
        let err = p
            .run(VerbClass::FlagWrite, 0, |_| {
                calls += 1;
                Err::<(), _>(VerbError::NicStall)
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.attempts, 1);
    }
}
