//! Deterministic fault injection: [`FaultPlan`] + [`FaultyTransport`].
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs the *verb*
//! layer only: it drops verbs, times them out, duplicates deliveries, adds
//! latency spikes, and browns out whole NICs — without ever touching the
//! data plane. That is exactly the failure surface of a real one-sided
//! fabric: payload bytes are moved by (idempotent) protocol actions after a
//! verb succeeds, so a dropped or duplicated verb can change *when* things
//! happen and *what the accounting says*, never *what memory holds* — which
//! is what `tests/chaos.rs` proves end-to-end.
//!
//! The schedule is a pure function of the plan's seed, the verb kind, a
//! per-kind issue counter, and the target node. No wall clock, no global
//! RNG: replaying the same verb sequence against the same plan reproduces
//! the same faults, on any backend. Brownouts are the one exception — they
//! are windows in *virtual time* (`at` stamps), meaningful on the simulator
//! and degenerate (always `at == 0`) on native, where only the
//! `[0, u64::MAX)` blackout window is useful.

use crate::retry::splitmix64;
use crate::transport::{Completion, Endpoint, TokenSlab, Transport, VerbError, VerbToken};
use obs::lyra::{Fate, FlightRecorder, RecordKind, VerbRecord};
use obs::SpanId;
use simnet::{ClusterTopology, CostModel, NetStats, NodeId, PerNodeSnapshot, ThreadLoc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A window of virtual time during which one node's NIC answers nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brownout {
    pub node: NodeId,
    /// First virtual instant of the outage (inclusive).
    pub from: u64,
    /// End of the outage (exclusive). `u64::MAX` makes it a blackout that
    /// never clears — the canonical way to exhaust retry budgets.
    pub until: u64,
}

/// A seeded, reproducible schedule of fabric misbehavior.
///
/// Rates are per-million per verb issue and independent: a verb is first
/// checked against the brownout windows, then may be dropped, timed out,
/// duplicated, or spiked (in that precedence order; at most one applies).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability (ppm) that a verb's payload is lost ([`VerbError::Dropped`]).
    pub drop_per_million: u32,
    /// Probability (ppm) that a verb completes no one knows when
    /// ([`VerbError::Timeout`]).
    pub timeout_per_million: u32,
    /// Probability (ppm) that a verb is delivered twice (the fabric retried
    /// under the initiator; both deliveries are accounted).
    pub duplicate_per_million: u32,
    /// Probability (ppm) that a verb completes late by [`Self::spike_cycles`].
    pub spike_per_million: u32,
    /// Extra latency charged by a spike.
    pub spike_cycles: u64,
    /// NIC outage windows; verbs targeting the node inside a window fail
    /// with [`VerbError::NicStall`].
    pub brownouts: Vec<Brownout>,
}

impl FaultPlan {
    /// No faults at all: the wrapper becomes a single predicted branch per
    /// verb.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this plan can never inject anything.
    pub fn is_disabled(&self) -> bool {
        self.drop_per_million == 0
            && self.timeout_per_million == 0
            && self.duplicate_per_million == 0
            && self.spike_per_million == 0
            && self.brownouts.is_empty()
    }

    /// A moderately hostile mixed plan: ~2% drops, ~1% timeouts, ~2%
    /// duplicates, ~2% spikes of 20k cycles. Well inside the default
    /// [`crate::RetryPolicy`] budget.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_million: 20_000,
            timeout_per_million: 10_000,
            duplicate_per_million: 20_000,
            spike_per_million: 20_000,
            spike_cycles: 20_000,
            ..Self::default()
        }
    }

    /// A permanent outage of `node`: every verb targeting it stalls, so any
    /// retry budget eventually exhausts. The clean-degradation test plan.
    pub fn blackout(node: NodeId) -> Self {
        FaultPlan {
            brownouts: vec![Brownout {
                node,
                from: 0,
                until: u64::MAX,
            }],
            ..Self::default()
        }
    }

    /// A bounded outage of `node`: verbs targeting it stall inside the
    /// virtual-time window `[from, until)` and succeed again afterwards.
    /// The brownout-recovery counterpart of [`Self::blackout`]: a node that
    /// comes back before the retry budget exhausts is never declared dead.
    pub fn outage(node: NodeId, from: u64, until: u64) -> Self {
        FaultPlan {
            brownouts: vec![Brownout { node, from, until }],
            ..Self::default()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_drops(mut self, per_million: u32) -> Self {
        self.drop_per_million = per_million;
        self
    }

    pub fn with_timeouts(mut self, per_million: u32) -> Self {
        self.timeout_per_million = per_million;
        self
    }

    pub fn with_duplicates(mut self, per_million: u32) -> Self {
        self.duplicate_per_million = per_million;
        self
    }

    pub fn with_spikes(mut self, per_million: u32, cycles: u64) -> Self {
        self.spike_per_million = per_million;
        self.spike_cycles = cycles;
        self
    }

    pub fn with_brownout(mut self, node: NodeId, from: u64, until: u64) -> Self {
        self.brownouts.push(Brownout { node, from, until });
        self
    }
}

/// Counts of injected faults, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    pub dropped: u64,
    pub timed_out: u64,
    pub duplicated: u64,
    pub spiked: u64,
    pub stalled: u64,
}

impl FaultSnapshot {
    /// Total verbs that observed *any* injected fault.
    pub fn total(&self) -> u64 {
        self.dropped + self.timed_out + self.duplicated + self.spiked + self.stalled
    }
}

#[derive(Debug, Default)]
struct FaultCounters {
    dropped: AtomicU64,
    timed_out: AtomicU64,
    duplicated: AtomicU64,
    spiked: AtomicU64,
    stalled: AtomicU64,
}

/// Verb kinds for the per-kind issue counters that key the schedule.
#[derive(Debug, Clone, Copy)]
enum VerbKind {
    Read = 0,
    Write = 1,
    Batch = 2,
    Atomic = 3,
}

enum Decision {
    Deliver,
    Duplicate,
    Spike(u64),
    Fail(VerbError),
}

/// A fault-injecting wrapper around any backend.
///
/// Build with [`FaultyTransport::wrap`]; a [`FaultPlan::disabled`] plan
/// reduces every verb to one extra branch and a forwarded call.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: Arc<T>,
    plan: FaultPlan,
    enabled: bool,
    /// Verbs issued so far, per [`VerbKind`] — the deterministic schedule
    /// key (virtual time is *not* part of the drop/duplicate/spike draw, so
    /// the same verb sequence faults identically on every backend).
    issued: [AtomicU64; 4],
    injected: FaultCounters,
    /// Lyra hook: once attached, every decided fault also lands in the
    /// flight recorder, stamped with the issuing endpoint's current span.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl<T: Transport> FaultyTransport<T> {
    pub fn wrap(inner: Arc<T>, plan: FaultPlan) -> Arc<Self> {
        let enabled = !plan.is_disabled();
        Arc::new(FaultyTransport {
            inner,
            plan,
            enabled,
            issued: Default::default(),
            injected: FaultCounters::default(),
            recorder: OnceLock::new(),
        })
    }

    /// Attach a flight recorder; injected fault fates will be recorded with
    /// the span of whichever endpoint issued the verb. First attach wins
    /// (later calls are ignored) — observability only, never an error. Also
    /// forwarded to the wrapped backend so its endpoints open single-writer
    /// lanes.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        self.inner.attach_recorder(recorder.clone());
        let _ = self.recorder.set(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.get()
    }

    pub fn inner(&self) -> &Arc<T> {
        &self.inner
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many faults of each kind have been injected so far.
    pub fn injected(&self) -> FaultSnapshot {
        let l = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FaultSnapshot {
            dropped: l(&self.injected.dropped),
            timed_out: l(&self.injected.timed_out),
            duplicated: l(&self.injected.duplicated),
            spiked: l(&self.injected.spiked),
            stalled: l(&self.injected.stalled),
        }
    }

    fn decide(&self, kind: VerbKind, target: NodeId, at: u64) -> Decision {
        if !self.enabled {
            return Decision::Deliver;
        }
        let n = self.issued[kind as usize].fetch_add(1, Ordering::Relaxed);
        for b in &self.plan.brownouts {
            if b.node == target && at >= b.from && at < b.until {
                self.injected.stalled.fetch_add(1, Ordering::Relaxed);
                return Decision::Fail(VerbError::NicStall);
            }
        }
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_add((kind as u64) << 56)
                .wrapping_add((target.0 as u64) << 40)
                .wrapping_add(n.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        // Four independent per-million draws from one mixed word.
        let draw = |i: u64| splitmix64(h.wrapping_add(i)) % 1_000_000;
        if draw(1) < self.plan.drop_per_million as u64 {
            self.injected.dropped.fetch_add(1, Ordering::Relaxed);
            return Decision::Fail(VerbError::Dropped);
        }
        if draw(2) < self.plan.timeout_per_million as u64 {
            self.injected.timed_out.fetch_add(1, Ordering::Relaxed);
            return Decision::Fail(VerbError::Timeout);
        }
        if draw(3) < self.plan.duplicate_per_million as u64 {
            self.injected.duplicated.fetch_add(1, Ordering::Relaxed);
            return Decision::Duplicate;
        }
        if draw(4) < self.plan.spike_per_million as u64 {
            self.injected.spiked.fetch_add(1, Ordering::Relaxed);
            return Decision::Spike(self.plan.spike_cycles);
        }
        Decision::Deliver
    }

    /// Run one fabric-level verb under a decision: `issue(at)` performs it.
    fn inject(
        &self,
        kind: VerbKind,
        target: NodeId,
        at: u64,
        issue: impl Fn(u64) -> Result<Completion, VerbError>,
    ) -> Result<Completion, VerbError> {
        match self.decide(kind, target, at) {
            Decision::Fail(e) => Err(e),
            Decision::Deliver => issue(at),
            Decision::Duplicate => {
                // The fabric delivered twice: both deliveries are timed and
                // accounted; the payload is idempotent so memory is unmoved.
                let first = issue(at)?;
                let second = issue(first.initiator_done)?;
                Ok(Completion {
                    initiator_done: second.initiator_done,
                    settled: first.settled.max(second.settled),
                })
            }
            Decision::Spike(extra) => {
                let c = issue(at)?;
                Ok(Completion {
                    initiator_done: c.initiator_done.saturating_add(extra),
                    settled: c.settled.saturating_add(extra),
                })
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    type Endpoint = FaultyEndpoint<T>;

    fn endpoint(this: &Arc<Self>, loc: ThreadLoc) -> FaultyEndpoint<T> {
        FaultyEndpoint {
            inner: T::endpoint(&this.inner, loc),
            fab: this.clone(),
            pending: TokenSlab::default(),
            span: SpanId::NONE,
        }
    }

    #[inline]
    fn topology(&self) -> &ClusterTopology {
        self.inner.topology()
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        self.inner.cost()
    }

    #[inline]
    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn per_node_stats(&self) -> Vec<PerNodeSnapshot> {
        self.inner.per_node_stats()
    }

    fn reset_per_node_stats(&self) {
        self.inner.reset_per_node_stats()
    }

    fn rdma_read(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Read, target, at, |at| {
            self.inner.rdma_read(from, target, at, bytes)
        })
    }

    fn rdma_write(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Write, target, at, |at| {
            self.inner.rdma_write(from, target, at, bytes)
        })
    }

    fn rdma_write_batch(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
        sizes: &[u64],
    ) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Batch, target, at, |at| {
            self.inner.rdma_write_batch(from, target, at, sizes)
        })
    }

    #[inline]
    fn prefers_batched_drain(&self) -> bool {
        self.inner.prefers_batched_drain()
    }

    fn rdma_fetch_or(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Atomic, target, at, |at| {
            self.inner.rdma_fetch_or(from, target, at)
        })
    }

    fn rdma_fetch_add(
        &self,
        from: ThreadLoc,
        target: NodeId,
        at: u64,
    ) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Atomic, target, at, |at| {
            self.inner.rdma_fetch_add(from, target, at)
        })
    }

    fn rdma_cas(&self, from: ThreadLoc, target: NodeId, at: u64) -> Result<Completion, VerbError> {
        self.inject(VerbKind::Atomic, target, at, |at| {
            self.inner.rdma_cas(from, target, at)
        })
    }

    #[inline]
    fn drained_at(&self, node: NodeId) -> u64 {
        self.inner.drained_at(node)
    }

    fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        FaultyTransport::attach_recorder(self, recorder);
    }
}

/// The verb parameters an async fault needs to replay its inner verb (a
/// duplicated delivery issues the second copy at poll time).
#[derive(Debug, Clone)]
enum AsyncOp {
    Read { target: NodeId, bytes: u64 },
    Write { target: NodeId, bytes: u64 },
    Batch { target: NodeId, sizes: Vec<u64> },
}

impl AsyncOp {
    fn target(&self) -> NodeId {
        match self {
            AsyncOp::Read { target, .. }
            | AsyncOp::Write { target, .. }
            | AsyncOp::Batch { target, .. } => *target,
        }
    }

    fn kind(&self) -> VerbKind {
        match self {
            AsyncOp::Read { .. } => VerbKind::Read,
            AsyncOp::Write { .. } => VerbKind::Write,
            AsyncOp::Batch { .. } => VerbKind::Batch,
        }
    }
}

/// One async verb in flight through the fault layer. The fate is decided at
/// *issue* time (consuming the same time-free per-kind schedule counter the
/// blocking path does); this records what must happen when it is polled.
#[derive(Debug, Clone)]
enum PendingFault {
    /// Healthy: forward the inner completion.
    Deliver(VerbToken),
    /// The fabric delivers twice: the second copy enters the wire at poll
    /// time, once the first delivery's initiator window is known.
    Duplicate { first: VerbToken, op: AsyncOp },
    /// Completes late. Reads delay the initiator by `extra` (mirroring the
    /// blocking path's post-read compute); posted writes only push out the
    /// settle stamp.
    Spike {
        token: VerbToken,
        extra: u64,
        read: bool,
    },
    /// Decided lost/stalled at issue; the error CQE surfaces at poll. No
    /// inner verb was ever posted.
    Fail(VerbError),
}

/// The issue port of a [`FaultyTransport`]: wraps the inner endpoint and
/// consults the shared fault schedule before every verb.
#[derive(Debug)]
pub struct FaultyEndpoint<T: Transport> {
    inner: T::Endpoint,
    fab: Arc<FaultyTransport<T>>,
    pending: TokenSlab<PendingFault>,
    /// Lyra span of the protocol operation currently issuing through this
    /// endpoint; stamped onto decided fault fates.
    span: SpanId,
}

// Manual impl: `#[derive(Clone)]` would demand `T: Clone`, which the fabric
// behind an `Arc` does not need.
impl<T: Transport> Clone for FaultyEndpoint<T> {
    fn clone(&self) -> Self {
        FaultyEndpoint {
            inner: self.inner.clone(),
            fab: self.fab.clone(),
            pending: self.pending.clone(),
            span: self.span,
        }
    }
}

impl<T: Transport> FaultyEndpoint<T> {
    pub fn inner(&self) -> &T::Endpoint {
        &self.inner
    }

    /// Flight-record a decided fault, attributed to the current span. A
    /// healthy `Deliver` records nothing; with no recorder attached (or a
    /// disabled one) this is a branch.
    fn note_fault(&self, decision: &Decision, kind: VerbKind, target: NodeId) {
        let Some(rec) = self.fab.recorder.get() else {
            return;
        };
        let fate = match decision {
            Decision::Deliver => return,
            Decision::Duplicate => Fate::Duplicate,
            Decision::Spike(_) => Fate::Spike,
            Decision::Fail(e) => Fate::from_error_name(e.name()),
        };
        let node = self.inner.node().0 as usize;
        let span = self.span;
        let extra = match decision {
            Decision::Spike(extra) => *extra,
            _ => kind as u64, // which schedule counter decided the fate
        };
        rec.record(node, || VerbRecord {
            span,
            start: self.inner.obs_now(),
            arg: extra,
            target: target.0 as u32,
            node: node as u16,
            kind: RecordKind::FaultInjected,
            fate,
            ..VerbRecord::blank()
        });
    }
}

impl<T: Transport> Endpoint for FaultyEndpoint<T> {
    #[inline]
    fn loc(&self) -> ThreadLoc {
        self.inner.loc()
    }

    #[inline]
    fn now(&self) -> u64 {
        self.inner.now()
    }

    #[inline]
    fn obs_now(&self) -> u64 {
        self.inner.obs_now()
    }

    #[inline]
    fn now_secs(&self) -> f64 {
        self.inner.now_secs()
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        self.inner.cost()
    }

    #[inline]
    fn compute(&mut self, cycles: u64) {
        self.inner.compute(cycles)
    }

    #[inline]
    fn dram_access(&mut self) {
        self.inner.dram_access()
    }

    #[inline]
    fn fault_trap(&mut self) {
        self.inner.fault_trap()
    }

    #[inline]
    fn merge(&mut self, t: u64) {
        self.inner.merge(t)
    }

    #[inline]
    fn set_span(&mut self, span: SpanId) {
        self.span = span;
        self.inner.set_span(span);
    }

    #[inline]
    fn current_span(&self) -> SpanId {
        self.span
    }

    #[inline]
    fn lyra_lane(&mut self) -> Option<&mut obs::Lane> {
        self.inner.lyra_lane()
    }

    fn issue_read(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken {
        self.issue_faulty(AsyncOp::Read { target, bytes }, not_before)
    }

    fn issue_write(&mut self, target: NodeId, bytes: u64, not_before: u64) -> VerbToken {
        self.issue_faulty(AsyncOp::Write { target, bytes }, not_before)
    }

    fn issue_write_batch(&mut self, target: NodeId, sizes: &[u64], not_before: u64) -> VerbToken {
        self.issue_faulty(
            AsyncOp::Batch {
                target,
                sizes: sizes.to_vec(),
            },
            not_before,
        )
    }

    fn poll(&mut self, token: VerbToken) -> Option<Result<Completion, VerbError>> {
        let outcome = match self.pending.take(token) {
            PendingFault::Fail(e) => Err(e),
            PendingFault::Deliver(t) => self.inner.wait(t),
            PendingFault::Duplicate { first, op } => self.inner.wait(first).and_then(|c1| {
                let second = self.issue_inner(&op, c1.initiator_done);
                self.inner.wait(second).map(|c2| Completion {
                    initiator_done: c2.initiator_done,
                    settled: c1.settled.max(c2.settled),
                })
            }),
            PendingFault::Spike { token, extra, read } => {
                self.inner.wait(token).map(|c| Completion {
                    initiator_done: if read {
                        c.initiator_done.saturating_add(extra)
                    } else {
                        c.initiator_done
                    },
                    settled: c.settled.saturating_add(extra),
                })
            }
        };
        Some(outcome)
    }

    fn rdma_read(&mut self, target: NodeId, bytes: u64) -> Result<(), VerbError> {
        let decision = self.fab.decide(VerbKind::Read, target, self.inner.now());
        self.note_fault(&decision, VerbKind::Read, target);
        match decision {
            Decision::Fail(e) => Err(e),
            Decision::Deliver => self.inner.rdma_read(target, bytes),
            Decision::Duplicate => {
                self.inner.rdma_read(target, bytes)?;
                self.inner.rdma_read(target, bytes)
            }
            Decision::Spike(extra) => {
                self.inner.rdma_read(target, bytes)?;
                self.inner.compute(extra);
                Ok(())
            }
        }
    }

    fn rdma_write(&mut self, target: NodeId, bytes: u64) -> Result<u64, VerbError> {
        let decision = self.fab.decide(VerbKind::Write, target, self.inner.now());
        self.note_fault(&decision, VerbKind::Write, target);
        match decision {
            Decision::Fail(e) => Err(e),
            Decision::Deliver => self.inner.rdma_write(target, bytes),
            Decision::Duplicate => {
                let a = self.inner.rdma_write(target, bytes)?;
                let b = self.inner.rdma_write(target, bytes)?;
                Ok(a.max(b))
            }
            Decision::Spike(extra) => {
                let s = self.inner.rdma_write(target, bytes)?;
                Ok(s.saturating_add(extra))
            }
        }
    }

    fn rdma_write_batch(&mut self, target: NodeId, sizes: &[u64]) -> Result<u64, VerbError> {
        let decision = self.fab.decide(VerbKind::Batch, target, self.inner.now());
        self.note_fault(&decision, VerbKind::Batch, target);
        match decision {
            Decision::Fail(e) => Err(e),
            Decision::Deliver => self.inner.rdma_write_batch(target, sizes),
            Decision::Duplicate => {
                let a = self.inner.rdma_write_batch(target, sizes)?;
                let b = self.inner.rdma_write_batch(target, sizes)?;
                Ok(a.max(b))
            }
            Decision::Spike(extra) => {
                let s = self.inner.rdma_write_batch(target, sizes)?;
                Ok(s.saturating_add(extra))
            }
        }
    }

    fn rdma_fetch_or(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.atomic(target, |e| e.rdma_fetch_or(target))
    }

    fn rdma_fetch_add(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.atomic(target, |e| e.rdma_fetch_add(target))
    }

    fn rdma_cas(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.atomic(target, |e| e.rdma_cas(target))
    }

    #[inline]
    fn wait_drain(&mut self, target: NodeId) {
        self.inner.wait_drain(target)
    }
}

impl<T: Transport> FaultyEndpoint<T> {
    /// Post `op` on the inner endpoint, entering the fabric at `not_before`.
    fn issue_inner(&mut self, op: &AsyncOp, not_before: u64) -> VerbToken {
        match op {
            AsyncOp::Read { target, bytes } => self.inner.issue_read(*target, *bytes, not_before),
            AsyncOp::Write { target, bytes } => self.inner.issue_write(*target, *bytes, not_before),
            AsyncOp::Batch { target, sizes } => {
                self.inner.issue_write_batch(*target, sizes, not_before)
            }
        }
    }

    /// Decide `op`'s fate now (consuming its per-kind schedule counter, so
    /// blocking and async drivers of the same verb sequence fault the same
    /// way) and record what poll must do.
    fn issue_faulty(&mut self, op: AsyncOp, not_before: u64) -> VerbToken {
        let at = self.inner.now().max(not_before);
        let decision = self.fab.decide(op.kind(), op.target(), at);
        self.note_fault(&decision, op.kind(), op.target());
        let pending = match decision {
            Decision::Fail(e) => PendingFault::Fail(e),
            Decision::Deliver => PendingFault::Deliver(self.issue_inner(&op, not_before)),
            Decision::Duplicate => PendingFault::Duplicate {
                first: self.issue_inner(&op, not_before),
                op,
            },
            Decision::Spike(extra) => PendingFault::Spike {
                token: self.issue_inner(&op, not_before),
                extra,
                read: matches!(op, AsyncOp::Read { .. }),
            },
        };
        self.pending.insert(pending)
    }

    fn atomic(
        &mut self,
        target: NodeId,
        issue: impl Fn(&mut T::Endpoint) -> Result<(), VerbError>,
    ) -> Result<(), VerbError> {
        let decision = self.fab.decide(VerbKind::Atomic, target, self.inner.now());
        self.note_fault(&decision, VerbKind::Atomic, target);
        match decision {
            Decision::Fail(e) => Err(e),
            Decision::Deliver => issue(&mut self.inner),
            Decision::Duplicate => {
                issue(&mut self.inner)?;
                issue(&mut self.inner)
            }
            Decision::Spike(extra) => {
                issue(&mut self.inner)?;
                self.inner.compute(extra);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NativeTransport, SimTransport};
    use simnet::Interconnect;

    fn sim() -> Arc<SimTransport> {
        Interconnect::new(ClusterTopology::tiny(2), CostModel::paper_2011())
    }

    #[test]
    fn disabled_plan_forwards_everything() {
        let f = FaultyTransport::wrap(sim(), FaultPlan::disabled());
        let loc = f.topology().loc(NodeId(0), 0);
        for _ in 0..100 {
            f.rdma_read(loc, NodeId(1), 0, 4096).unwrap();
            f.rdma_write(loc, NodeId(1), 0, 64).unwrap();
            f.rdma_cas(loc, NodeId(1), 0).unwrap();
        }
        assert_eq!(f.injected(), FaultSnapshot::default());
        assert_eq!(f.stats().snapshot().rdma_reads, 100);
    }

    #[test]
    fn schedule_is_reproducible_and_seed_sensitive() {
        let plan = FaultPlan::seeded(42);
        let run = |plan: FaultPlan| {
            let f = FaultyTransport::wrap(sim(), plan);
            let loc = f.topology().loc(NodeId(0), 0);
            (0..500)
                .map(|i| f.rdma_read(loc, NodeId(1 - (i % 2) as u16), 0, 64).is_ok())
                .collect::<Vec<_>>()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b, "same plan, same verb sequence, different faults");
        assert!(a.iter().any(|ok| !ok), "a 2% drop plan never dropped in 500 verbs");
        let c = run(FaultPlan::seeded(43));
        assert_ne!(a, c, "different seeds produced the identical schedule");
    }

    #[test]
    fn schedule_ignores_virtual_time_so_backends_agree() {
        let plan = FaultPlan::seeded(7);
        let on_sim = {
            let f = FaultyTransport::wrap(sim(), plan.clone());
            let loc = f.topology().loc(NodeId(0), 0);
            (0..300)
                .map(|i| f.rdma_write(loc, NodeId(1), i * 777, 64).is_ok())
                .collect::<Vec<_>>()
        };
        let on_native = {
            let f = FaultyTransport::wrap(NativeTransport::new(ClusterTopology::tiny(2)), plan);
            let loc = f.topology().loc(NodeId(0), 0);
            (0..300)
                .map(|_| f.rdma_write(loc, NodeId(1), 0, 64).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(on_sim, on_native);
    }

    #[test]
    fn brownout_stalls_only_its_node_and_window() {
        let plan = FaultPlan::default().with_brownout(NodeId(1), 1_000, 2_000);
        let f = FaultyTransport::wrap(sim(), plan);
        let loc = f.topology().loc(NodeId(0), 0);
        assert!(f.rdma_read(loc, NodeId(1), 0, 64).is_ok());
        assert_eq!(
            f.rdma_read(loc, NodeId(1), 1_500, 64).unwrap_err(),
            VerbError::NicStall
        );
        // Other node unaffected; window end clears it.
        assert!(f.rdma_read(loc, NodeId(0), 1_500, 64).is_ok());
        assert!(f.rdma_read(loc, NodeId(1), 2_000, 64).is_ok());
        assert_eq!(f.injected().stalled, 1);
    }

    #[test]
    fn blackout_never_clears() {
        let f = FaultyTransport::wrap(sim(), FaultPlan::blackout(NodeId(1)));
        let loc = f.topology().loc(NodeId(0), 0);
        for at in [0u64, 1 << 20, 1 << 40, u64::MAX - 1] {
            assert_eq!(f.rdma_read(loc, NodeId(1), at, 64), Err(VerbError::NicStall));
        }
    }

    #[test]
    fn duplicates_account_twice_but_deliver_the_same_payload() {
        let plan = FaultPlan::default().with_seed(3).with_duplicates(1_000_000);
        let f = FaultyTransport::wrap(sim(), plan);
        let loc = f.topology().loc(NodeId(0), 0);
        let c = f.rdma_write(loc, NodeId(1), 0, 64).unwrap();
        assert_eq!(f.injected().duplicated, 1);
        assert_eq!(f.stats().snapshot().rdma_writes, 2);
        // The duplicate finishes after a single delivery would have.
        let single = Transport::rdma_write(&*sim(), loc, NodeId(1), 0, 64).unwrap();
        assert!(c.initiator_done > single.initiator_done);
    }

    #[test]
    fn spikes_delay_completions() {
        let plan = FaultPlan::default().with_seed(5).with_spikes(1_000_000, 9_999);
        let f = FaultyTransport::wrap(sim(), plan);
        let loc = f.topology().loc(NodeId(0), 0);
        let spiked = f.rdma_read(loc, NodeId(1), 0, 64).unwrap();
        let clean = Transport::rdma_read(&*sim(), loc, NodeId(1), 0, 64).unwrap();
        assert_eq!(spiked.initiator_done, clean.initiator_done + 9_999);
        assert_eq!(f.injected().spiked, 1);
    }

    /// The same verb sequence driven through blocking verbs and through
    /// issue + wait + merge faults identically (same per-kind schedule
    /// counters consumed at issue) and leaves the clock in the same place.
    #[test]
    fn async_verbs_fault_on_the_blocking_schedule() {
        let plan = FaultPlan::seeded(42);
        let drive = |asynchronous: bool| {
            let f = FaultyTransport::wrap(sim(), plan.clone());
            let loc = f.topology().loc(NodeId(0), 0);
            let mut e = <FaultyTransport<SimTransport> as Transport>::endpoint(&f, loc);
            let outcomes: Vec<bool> = (0..300)
                .map(|i| {
                    if asynchronous {
                        let tok = if i % 2 == 0 {
                            e.issue_write(NodeId(1), 64, e.now())
                        } else {
                            e.issue_read(NodeId(1), 256, e.now())
                        };
                        match e.wait(tok) {
                            Ok(c) => {
                                e.merge(c.initiator_done);
                                true
                            }
                            Err(_) => false,
                        }
                    } else if i % 2 == 0 {
                        Endpoint::rdma_write(&mut e, NodeId(1), 64).is_ok()
                    } else {
                        Endpoint::rdma_read(&mut e, NodeId(1), 256).is_ok()
                    }
                })
                .collect();
            (outcomes, e.now(), f.injected())
        };
        let blocking = drive(false);
        let asynchronous = drive(true);
        assert_eq!(blocking.0, asynchronous.0, "fault schedules diverged");
        assert_eq!(blocking.1, asynchronous.1, "clocks diverged");
        assert_eq!(blocking.2, asynchronous.2, "injection counters diverged");
        assert!(asynchronous.2.total() > 0, "plan injected nothing");
    }

    /// A lost verb is decided (and counted) at issue, but the error CQE
    /// only surfaces when the token is polled.
    #[test]
    fn async_failures_surface_at_poll() {
        let f = FaultyTransport::wrap(sim(), FaultPlan::blackout(NodeId(1)));
        let loc = f.topology().loc(NodeId(0), 0);
        let mut e = <FaultyTransport<SimTransport> as Transport>::endpoint(&f, loc);
        let tok = e.issue_read(NodeId(1), 4096, 0);
        assert_eq!(f.injected().stalled, 1, "fate decided at issue");
        assert_eq!(e.wait(tok), Err(VerbError::NicStall));
        assert_eq!(e.now(), 0, "a failed verb must not advance the clock");
    }

    #[test]
    fn faulty_endpoint_forwards_placement_and_clock() {
        let f = FaultyTransport::wrap(sim(), FaultPlan::disabled());
        let loc = f.topology().loc(NodeId(1), 1);
        let mut e = <FaultyTransport<SimTransport> as Transport>::endpoint(&f, loc);
        assert_eq!(Endpoint::loc(&e), loc);
        e.compute(123);
        assert_eq!(e.now(), 123);
        e.rdma_read(NodeId(0), 4096).unwrap();
        assert!(e.now() > 123);
    }
}
