//! The native backend: real shared memory, real threads, **no virtual
//! clock**.
//!
//! Under the simulator, the data plane is already host shared memory — the
//! interconnect only *charges time*. The native backend keeps the data plane
//! and drops the time: every verb completes instantly (all [`Completion`]
//! stamps are 0), `compute`/`merge`/`fault_trap` are no-ops, and the
//! identical protocol engine executes on host threads at wall-clock speed.
//! The mutual exclusion that makes this sound (directory word atomics, line
//! seqlocks, real barrier condvars) is exactly the mutual exclusion the
//! engine already uses to keep *parallel virtual-time* simulation coherent,
//! so no protocol code changes between backends.
//!
//! Verb *accounting* is kept: [`NetStats`] and per-node counters tick the
//! same way the simulator's do, which lets the cross-backend conformance
//! suite compare traffic shapes, and lets wall-clock benchmarks report
//! verbs/second.

use crate::transport::{Completion, Endpoint, TokenSlab, Transport, VerbError, VerbToken};
use simnet::stats::PerNodeStats;
use simnet::{ClusterTopology, CostModel, NetStats, NodeId, PerNodeSnapshot, ThreadLoc};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// A fabric with no latency model: topology + verb accounting only.
#[derive(Debug)]
pub struct NativeTransport {
    topology: ClusterTopology,
    /// Reference constants. Protocol code reads sizes (`atomic_op_bytes`)
    /// and classification knobs from here; the latency fields are never
    /// charged to anything.
    cost: CostModel,
    stats: NetStats,
    per_node: Vec<PerNodeStats>,
    /// Lyra flight recorder, attached by the DSM layer before endpoints are
    /// created; endpoints open single-writer lanes against it.
    recorder: OnceLock<Arc<obs::FlightRecorder>>,
}

impl NativeTransport {
    pub fn new(topology: ClusterTopology) -> Arc<Self> {
        Self::with_cost(topology, CostModel::paper_2011())
    }

    /// Use specific reference constants (sizes still matter even when
    /// latencies don't).
    pub fn with_cost(topology: ClusterTopology, cost: CostModel) -> Arc<Self> {
        Arc::new(NativeTransport {
            topology,
            cost,
            stats: NetStats::default(),
            per_node: (0..topology.nodes).map(|_| PerNodeStats::default()).collect(),
            recorder: OnceLock::new(),
        })
    }

    /// Account a transfer of `bytes` from `src` into `dst` (same shape as
    /// the simulator's accounting: intra-node traffic is free).
    fn account(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst {
            return;
        }
        self.per_node[src.idx()]
            .bytes_out
            .fetch_add(bytes, Ordering::Relaxed);
        let d = &self.per_node[dst.idx()];
        d.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        d.ops_in.fetch_add(1, Ordering::Relaxed);
    }

    fn atomic(&self, from: ThreadLoc, target: NodeId) -> Completion {
        self.stats.rdma_atomics.fetch_add(1, Ordering::Relaxed);
        self.account(target, from.node, self.cost.atomic_op_bytes);
        Completion::instant(0)
    }
}

impl Transport for NativeTransport {
    type Endpoint = NativeEndpoint;

    fn endpoint(this: &Arc<Self>, loc: ThreadLoc) -> NativeEndpoint {
        let lane = this
            .recorder
            .get()
            .map(|fr| obs::FlightRecorder::lane(fr, loc.node.idx()));
        NativeEndpoint {
            loc,
            net: this.clone(),
            pending: TokenSlab::default(),
            span: obs::SpanId::NONE,
            lane,
        }
    }

    #[inline]
    fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        &self.cost
    }

    #[inline]
    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn per_node_stats(&self) -> Vec<PerNodeSnapshot> {
        self.per_node.iter().map(|p| p.snapshot()).collect()
    }

    fn reset_per_node_stats(&self) {
        for p in &self.per_node {
            p.reset();
        }
    }

    #[inline]
    fn rdma_read(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        self.stats.rdma_reads.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.account(target, from.node, bytes);
        Ok(Completion::instant(0))
    }

    #[inline]
    fn rdma_write(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
        bytes: u64,
    ) -> Result<Completion, VerbError> {
        self.stats.rdma_writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.account(from.node, target, bytes);
        Ok(Completion::instant(0))
    }

    /// One counter update per counter for the whole batch — the final
    /// values are exactly what the equivalent per-page write sequence would
    /// leave, at a fraction of the atomic traffic.
    #[inline]
    fn rdma_write_batch(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
        sizes: &[u64],
    ) -> Result<Completion, VerbError> {
        let total: u64 = sizes.iter().sum();
        self.stats
            .rdma_writes
            .fetch_add(sizes.len() as u64, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(total, Ordering::Relaxed);
        if from.node != target && !sizes.is_empty() {
            self.per_node[from.node.idx()]
                .bytes_out
                .fetch_add(total, Ordering::Relaxed);
            let d = &self.per_node[target.idx()];
            d.bytes_in.fetch_add(total, Ordering::Relaxed);
            d.ops_in.fetch_add(sizes.len() as u64, Ordering::Relaxed);
        }
        Ok(Completion::instant(0))
    }

    /// Issuing a verb costs real host time here, so coalescing the fence
    /// drain into one batch per home is pure win.
    #[inline]
    fn prefers_batched_drain(&self) -> bool {
        true
    }

    #[inline]
    fn rdma_fetch_or(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(self.atomic(from, target))
    }

    #[inline]
    fn rdma_fetch_add(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(self.atomic(from, target))
    }

    #[inline]
    fn rdma_cas(
        &self,
        from: ThreadLoc,
        target: NodeId,
        _at: u64,
    ) -> Result<Completion, VerbError> {
        Ok(self.atomic(from, target))
    }

    /// Nothing queues: writes are plain stores, visible under the engine's
    /// own synchronization by the time any fence asks.
    #[inline]
    fn drained_at(&self, _node: NodeId) -> u64 {
        0
    }

    // No faults to stamp, but endpoints created after this open
    // single-writer lanes against the recorder. First attach wins.
    fn attach_recorder(&self, recorder: Arc<obs::FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }
}

/// A native issue port: placement plus a handle to the fabric's counters.
/// Carries no clock — `now()` is always 0.
#[derive(Debug, Clone)]
pub struct NativeEndpoint {
    loc: ThreadLoc,
    net: Arc<NativeTransport>,
    /// Verbs issued but not yet polled. The fabric completes (and accounts)
    /// everything at issue time, so entries only hold the finished
    /// [`Completion`] until the caller collects it.
    pending: TokenSlab<Completion>,
    /// Lyra span of the operation currently issuing through this endpoint.
    span: obs::SpanId,
    /// Single-writer Lyra lane (present once a recorder is attached).
    lane: Option<obs::Lane>,
}

impl NativeEndpoint {
    #[inline]
    pub fn net(&self) -> &Arc<NativeTransport> {
        &self.net
    }
}

impl Endpoint for NativeEndpoint {
    #[inline]
    fn loc(&self) -> ThreadLoc {
        self.loc
    }

    #[inline]
    fn now(&self) -> u64 {
        0
    }

    #[inline]
    fn now_secs(&self) -> f64 {
        0.0
    }

    /// Wall nanoseconds since the first `obs_now()` call in this process.
    /// The protocol clock stays at 0; this one exists so latency histograms
    /// and traces have real durations to work with.
    #[inline]
    fn obs_now(&self) -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    #[inline]
    fn cost(&self) -> &CostModel {
        self.net.cost()
    }

    #[inline]
    fn compute(&mut self, _cycles: u64) {}

    #[inline]
    fn dram_access(&mut self) {}

    #[inline]
    fn fault_trap(&mut self) {}

    #[inline]
    fn merge(&mut self, _t: u64) {}

    #[inline]
    fn set_span(&mut self, span: obs::SpanId) {
        self.span = span;
    }

    #[inline]
    fn current_span(&self) -> obs::SpanId {
        self.span
    }

    #[inline]
    fn lyra_lane(&mut self) -> Option<&mut obs::Lane> {
        self.lane.as_mut()
    }

    // The blocking read/write/batch verbs use the trait's default
    // issue + wait + merge wrappers (merge is a no-op here), which tick the
    // same fabric counters the direct calls did.

    #[inline]
    fn issue_read(&mut self, target: NodeId, bytes: u64, _not_before: u64) -> VerbToken {
        let c = Transport::rdma_read(&*self.net, self.loc, target, 0, bytes)
            .expect("native fabric is infallible");
        self.pending.insert(c)
    }

    #[inline]
    fn issue_write(&mut self, target: NodeId, bytes: u64, _not_before: u64) -> VerbToken {
        let c = Transport::rdma_write(&*self.net, self.loc, target, 0, bytes)
            .expect("native fabric is infallible");
        self.pending.insert(c)
    }

    #[inline]
    fn issue_write_batch(&mut self, target: NodeId, sizes: &[u64], _not_before: u64) -> VerbToken {
        let c = Transport::rdma_write_batch(&*self.net, self.loc, target, 0, sizes)
            .expect("native fabric is infallible");
        self.pending.insert(c)
    }

    #[inline]
    fn poll(&mut self, token: VerbToken) -> Option<Result<Completion, VerbError>> {
        Some(Ok(self.pending.take(token)))
    }

    #[inline]
    fn rdma_fetch_or(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.net.atomic(self.loc, target);
        Ok(())
    }

    #[inline]
    fn rdma_fetch_add(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.net.atomic(self.loc, target);
        Ok(())
    }

    #[inline]
    fn rdma_cas(&mut self, target: NodeId) -> Result<(), VerbError> {
        self.net.atomic(self.loc, target);
        Ok(())
    }

    #[inline]
    fn wait_drain(&mut self, _target: NodeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_instant_but_counted() {
        let net = NativeTransport::new(ClusterTopology::tiny(2));
        let loc = net.topology().loc(NodeId(0), 0);
        let mut e = <NativeTransport as Transport>::endpoint(&net, loc);
        e.compute(1_000_000);
        e.rdma_read(NodeId(1), 4096).unwrap();
        let settled = Endpoint::rdma_write(&mut e, NodeId(1), 64).unwrap();
        e.rdma_fetch_or(NodeId(1)).unwrap();
        assert_eq!(e.now(), 0);
        assert_eq!(settled, 0);
        let s = net.stats().snapshot();
        assert_eq!((s.rdma_reads, s.rdma_writes, s.rdma_atomics), (1, 1, 1));
        assert_eq!(s.bytes_read, 4096);
        let per = net.per_node_stats();
        // Read pulls into node 0; the atomic's footprint lands there too.
        assert_eq!(per[0].bytes_in, 4096 + net.cost().atomic_op_bytes);
        assert_eq!(per[1].bytes_in, 64); // write pushes into node 1
    }

    /// The protocol clock is pinned at 0, but the observability clock moves.
    #[test]
    fn obs_clock_advances_while_protocol_clock_stays_zero() {
        let net = NativeTransport::new(ClusterTopology::tiny(1));
        let loc = net.topology().loc(NodeId(0), 0);
        let e = <NativeTransport as Transport>::endpoint(&net, loc);
        let t0 = e.obs_now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = e.obs_now();
        assert!(t1 > t0, "obs clock did not advance: {t0} -> {t1}");
        assert_eq!(e.now(), 0);
    }

    #[test]
    fn intra_node_traffic_is_not_accounted() {
        let net = NativeTransport::new(ClusterTopology::tiny(2));
        let loc = net.topology().loc(NodeId(0), 0);
        Transport::rdma_read(&*net, loc, NodeId(0), 0, 4096).unwrap();
        assert_eq!(net.per_node_stats()[0].bytes_in, 0);
        assert_eq!(net.stats().snapshot().rdma_reads, 1);
    }
}
