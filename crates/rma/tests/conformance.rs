//! Backend-conformance suite: every `Transport` implementation must satisfy
//! the same verb contract, whatever its notion of time.
//!
//! Each check is written once, generically, and instantiated against both
//! shipped backends. The contract deliberately avoids asserting *specific*
//! latencies (the simulator charges the paper's constants, the native
//! backend charges nothing); it pins down what protocol code is allowed to
//! rely on:
//!
//! - verbs are fallible in the signature but infallible on a healthy
//!   fabric: every completion arrives as `Ok`;
//! - completions are ordered: `settled >= initiator_done`;
//! - verbs tick the shared [`NetStats`] counters and the per-node tables;
//! - per-node accounting conserves bytes (every remote byte out lands in);
//! - intra-node traffic is free (no per-node accounting);
//! - all three atomic flavors count as `rdma_atomics`;
//! - endpoints report the placement they were built with, their clock never
//!   runs backwards, and posted writes settle no earlier than issue time;
//! - a fault-injecting wrapper with a disabled plan is indistinguishable
//!   from the bare fabric.

use rma::{ClusterTopology, Endpoint, NativeTransport, NodeId, Transport};
use rma::{CostModel, FaultPlan, FaultyTransport, Interconnect, SimTransport};
use std::sync::Arc;

fn completions_are_ordered<T: Transport>(net: &Arc<T>) {
    let loc = net.topology().loc(NodeId(0), 0);
    let r = net.rdma_read(loc, NodeId(1), 0, 4096).unwrap();
    assert!(r.settled >= r.initiator_done, "read settle before unblock");
    let w = net.rdma_write(loc, NodeId(1), 0, 4096).unwrap();
    assert!(w.settled >= w.initiator_done, "write settle before unblock");
    for c in [
        net.rdma_fetch_or(loc, NodeId(1), 0).unwrap(),
        net.rdma_fetch_add(loc, NodeId(1), 0).unwrap(),
        net.rdma_cas(loc, NodeId(1), 0).unwrap(),
    ] {
        assert!(c.settled >= c.initiator_done, "atomic settle before unblock");
    }
}

/// A healthy fabric never fails a verb: the `Result` surface is for fault
/// injection and real NICs, and protocol code may rely on `Ok` when no
/// faults are configured.
fn healthy_fabric_is_infallible<T: Transport>(net: &Arc<T>) {
    let loc = net.topology().loc(NodeId(0), 0);
    for _ in 0..64 {
        assert!(net.rdma_read(loc, NodeId(1), 0, 4096).is_ok());
        assert!(net.rdma_write(loc, NodeId(1), 0, 64).is_ok());
        assert!(net.rdma_write_batch(loc, NodeId(1), 0, &[64, 4096]).is_ok());
        assert!(net.rdma_fetch_or(loc, NodeId(1), 0).is_ok());
        assert!(net.rdma_fetch_add(loc, NodeId(1), 0).is_ok());
        assert!(net.rdma_cas(loc, NodeId(1), 0).is_ok());
    }
    let mut e = T::endpoint(net, loc);
    for _ in 0..64 {
        assert!(e.rdma_read(NodeId(1), 4096).is_ok());
        assert!(e.rdma_write(NodeId(1), 64).is_ok());
        assert!(e.rdma_fetch_or(NodeId(1)).is_ok());
        assert!(e.rdma_fetch_add(NodeId(1)).is_ok());
        assert!(e.rdma_cas(NodeId(1)).is_ok());
    }
}

fn verbs_are_counted<T: Transport>(net: &Arc<T>) {
    let loc = net.topology().loc(NodeId(0), 0);
    let before = net.stats().snapshot();
    net.rdma_read(loc, NodeId(1), 0, 4096).unwrap();
    net.rdma_write(loc, NodeId(1), 0, 128).unwrap();
    net.rdma_fetch_or(loc, NodeId(1), 0).unwrap();
    net.rdma_fetch_add(loc, NodeId(1), 0).unwrap();
    net.rdma_cas(loc, NodeId(1), 0).unwrap();
    let after = net.stats().snapshot();
    assert_eq!(after.rdma_reads - before.rdma_reads, 1);
    assert_eq!(after.rdma_writes - before.rdma_writes, 1);
    assert_eq!(after.rdma_atomics - before.rdma_atomics, 3);
    assert_eq!(after.bytes_read - before.bytes_read, 4096);
    assert_eq!(after.bytes_written - before.bytes_written, 128);
}

fn per_node_accounting_conserves<T: Transport>(net: &Arc<T>) {
    net.reset_per_node_stats();
    let nodes = net.topology().nodes;
    for src in 0..nodes as u16 {
        for dst in 0..nodes as u16 {
            let loc = net.topology().loc(NodeId(src), 0);
            net.rdma_write(loc, NodeId(dst), 0, 1000 + dst as u64).unwrap();
        }
    }
    let per = net.per_node_stats();
    let total_in: u64 = per.iter().map(|p| p.bytes_in).sum();
    let total_out: u64 = per.iter().map(|p| p.bytes_out).sum();
    assert_eq!(total_in, total_out, "bytes leaked in per-node accounting");
    assert!(total_in > 0, "remote transfers must be accounted");
    net.reset_per_node_stats();
}

fn intra_node_traffic_is_free<T: Transport>(net: &Arc<T>) {
    net.reset_per_node_stats();
    let loc = net.topology().loc(NodeId(0), 0);
    net.rdma_read(loc, NodeId(0), 0, 4096).unwrap();
    net.rdma_write(loc, NodeId(0), 0, 4096).unwrap();
    let per = net.per_node_stats();
    assert_eq!(per[0].bytes_in, 0, "intra-node read accounted");
    assert_eq!(per[0].bytes_out, 0, "intra-node write accounted");
    net.reset_per_node_stats();
}

fn endpoints_carry_placement_and_monotone_clocks<T: Transport>(net: &Arc<T>) {
    let loc = net.topology().loc(NodeId(1), 2);
    let mut e = T::endpoint(net, loc);
    assert_eq!(e.loc(), loc);
    assert_eq!(e.node(), NodeId(1));
    let mut last = e.now();
    e.compute(500);
    assert!(e.now() >= last, "compute reversed the clock");
    last = e.now();
    e.dram_access();
    e.fault_trap();
    assert!(e.now() >= last, "local ops reversed the clock");
    last = e.now();
    e.rdma_read(NodeId(0), 4096).unwrap();
    let settled = e.rdma_write(NodeId(0), 64).unwrap();
    assert!(e.now() >= last, "verbs reversed the clock");
    assert!(settled >= last, "posted write settled before issue");
    e.rdma_fetch_or(NodeId(0)).unwrap();
    e.rdma_fetch_add(NodeId(0)).unwrap();
    e.rdma_cas(NodeId(0)).unwrap();
    last = e.now();
    e.merge(last + 1_000);
    assert!(e.now() >= last, "merge reversed the clock");
    e.wait_drain(NodeId(0)); // must not panic or reverse time
    assert!(e.now() >= last);
}

fn endpoint_clones_share_the_fabric<T: Transport>(net: &Arc<T>) {
    let loc = net.topology().loc(NodeId(0), 0);
    let e = T::endpoint(net, loc);
    let mut e2 = e.clone();
    let before = net.stats().snapshot().rdma_reads;
    e2.rdma_read(NodeId(1), 64).unwrap();
    assert_eq!(net.stats().snapshot().rdma_reads, before + 1);
}

/// The batched write verb must be counter-equivalent to issuing its pages
/// as singles, on every backend: same `rdma_writes` ticks, same byte
/// totals, same per-node conservation. An empty batch is a no-op.
fn batched_writes_count_like_singles<T: Transport>(net: &Arc<T>) {
    net.reset_per_node_stats();
    let loc = net.topology().loc(NodeId(0), 0);
    let sizes = [4096u64, 72, 4096, 160];
    let total: u64 = sizes.iter().sum();
    let before = net.stats().snapshot();
    let b = net.rdma_write_batch(loc, NodeId(1), 0, &sizes).unwrap();
    assert!(b.settled >= b.initiator_done, "batch settle before unblock");
    let after = net.stats().snapshot();
    assert_eq!(after.rdma_writes - before.rdma_writes, sizes.len() as u64);
    assert_eq!(after.bytes_written - before.bytes_written, total);
    let per = net.per_node_stats();
    assert_eq!(per[0].bytes_out, total, "batch bytes_out mismatch");
    assert_eq!(per[1].bytes_in, total, "batch bytes_in mismatch");
    assert_eq!(per[1].ops_in, sizes.len() as u64, "batch ops_in mismatch");

    let mid = net.stats().snapshot();
    net.rdma_write_batch(loc, NodeId(1), 0, &[]).unwrap();
    let end = net.stats().snapshot();
    assert_eq!(end.rdma_writes, mid.rdma_writes, "empty batch counted");
    assert_eq!(end.bytes_written, mid.bytes_written);
    net.reset_per_node_stats();

    // Endpoint flavor reaches the same fabric counters.
    let mut e = T::endpoint(net, loc);
    let before = net.stats().snapshot();
    let settled = e.rdma_write_batch(NodeId(1), &sizes).unwrap();
    assert!(settled >= e.now(), "batch settled before issue completed");
    let after = net.stats().snapshot();
    assert_eq!(after.rdma_writes - before.rdma_writes, sizes.len() as u64);
    assert_eq!(after.bytes_written - before.bytes_written, total);
    net.reset_per_node_stats();
}

fn run_all<T: Transport>(net: Arc<T>) {
    completions_are_ordered(&net);
    healthy_fabric_is_infallible(&net);
    verbs_are_counted(&net);
    per_node_accounting_conserves(&net);
    intra_node_traffic_is_free(&net);
    batched_writes_count_like_singles(&net);
    endpoints_carry_placement_and_monotone_clocks(&net);
    endpoint_clones_share_the_fabric(&net);
}

#[test]
fn sim_transport_meets_the_contract() {
    let topo = ClusterTopology::paper(4);
    run_all::<SimTransport>(Interconnect::new(topo, CostModel::paper_2011()));
}

#[test]
fn native_transport_meets_the_contract() {
    let topo = ClusterTopology::paper(4);
    run_all(NativeTransport::new(topo));
}

/// A [`FaultyTransport`] whose plan is disabled must be indistinguishable
/// from the bare fabric — it is a pass-through, not a new backend.
#[test]
fn disabled_faulty_wrapper_meets_the_contract() {
    let topo = ClusterTopology::paper(4);
    let sim = Interconnect::new(topo, CostModel::paper_2011());
    run_all(FaultyTransport::wrap(sim, FaultPlan::disabled()));
    let native = NativeTransport::new(topo);
    run_all(FaultyTransport::wrap(native, FaultPlan::disabled()));
}

/// Even under an aggressive fault plan, every `Ok` completion still obeys
/// the ordering contract, and the injected-fault counters tick.
#[test]
fn faulty_wrapper_failures_are_typed_and_ordered() {
    let topo = ClusterTopology::tiny(2);
    let sim = Interconnect::new(topo, CostModel::paper_2011());
    let net = FaultyTransport::wrap(sim, FaultPlan::seeded(7));
    let loc = net.topology().loc(NodeId(0), 0);
    let mut failures = 0u64;
    for i in 0..512 {
        match net.rdma_write(loc, NodeId(1), i, 256) {
            Ok(c) => assert!(c.settled >= c.initiator_done),
            Err(_) => failures += 1,
        }
    }
    assert!(failures > 0, "seeded plan injected nothing over 512 writes");
    let snap = net.injected();
    assert_eq!(snap.dropped + snap.timed_out + snap.stalled, failures);
}

/// The simulator additionally promises real latencies: remote verbs cost at
/// least a network round trip, which the generic contract cannot ask for.
#[test]
fn sim_transport_charges_latency() {
    let topo = ClusterTopology::tiny(2);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let c = *Transport::cost(&*net);
    let loc = net.topology().loc(NodeId(0), 0);
    let r = Transport::rdma_read(&*net, loc, NodeId(1), 0, 4096).unwrap();
    assert!(r.initiator_done >= 2 * c.network_latency);
}

/// The native backend additionally promises zero time: completions are
/// always instant and endpoint clocks pinned at zero.
#[test]
fn native_transport_is_timeless() {
    let topo = ClusterTopology::tiny(2);
    let net = NativeTransport::new(topo);
    let loc = net.topology().loc(NodeId(0), 0);
    let r = net.rdma_read(loc, NodeId(1), 0, 4096).unwrap();
    assert_eq!((r.initiator_done, r.settled), (0, 0));
    let mut e = <NativeTransport as Transport>::endpoint(&net, loc);
    e.compute(1_000_000);
    e.merge(u64::MAX / 2);
    assert_eq!(e.now(), 0);
    assert_eq!(net.drained_at(NodeId(0)), 0);
}

// --- DSM contract: every transport x coherence-policy combination ---

/// The protocol-level contract every (transport, coherence policy) pair
/// must meet: a value written before an SD fence is observed by a remote
/// reader after its SI fence, read-your-own-writes holds without fences,
/// and the engine's internal invariants stay clean at the end.
fn dsm_meets_the_contract<T: Transport, C: carina::Coherence>(net: Arc<T>) {
    use mem::GlobalAddr;
    let dsm = carina::Dsm::<T, C>::with_policy(net.clone(), 1 << 20, carina::CarinaConfig::default());
    let topo = net.topology();
    let mut a = T::endpoint(&net, topo.loc(NodeId(0), 0));
    let mut b = T::endpoint(&net, topo.loc(NodeId(1), 0));
    let addr = GlobalAddr(dsm.total_bytes() / 2); // homed on node 1

    // Read-your-own-writes, no fences needed.
    dsm.write_u64(&mut a, addr, 7);
    assert_eq!(dsm.read_u64(&mut a, addr), 7, "{}: RYOW broke", C::NAME);

    // Release/acquire publication across nodes.
    dsm.sd_fence(&mut a);
    dsm.si_fence(&mut b);
    assert_eq!(dsm.read_u64(&mut b, addr), 7, "{}: publication broke", C::NAME);

    // A second round through the same page (lease renewal / re-fetch path).
    dsm.write_u64(&mut b, addr, 9);
    dsm.sd_fence(&mut b);
    dsm.si_fence(&mut a);
    assert_eq!(dsm.read_u64(&mut a, addr), 9, "{}: second round broke", C::NAME);

    dsm.check_invariants();
}

#[test]
fn dsm_contract_holds_for_every_policy_and_backend() {
    let topo = ClusterTopology::tiny(2);
    let cost = CostModel::paper_2011();
    dsm_meets_the_contract::<_, carina::CarinaSiSd>(Interconnect::new(topo, cost));
    dsm_meets_the_contract::<_, carina::Tardis>(Interconnect::new(topo, cost));
    dsm_meets_the_contract::<_, carina::Pyxis>(Interconnect::new(topo, cost));
    dsm_meets_the_contract::<_, carina::CarinaSiSd>(NativeTransport::with_cost(topo, cost));
    dsm_meets_the_contract::<_, carina::Tardis>(NativeTransport::with_cost(topo, cost));
    dsm_meets_the_contract::<_, carina::Pyxis>(NativeTransport::with_cost(topo, cost));
}
