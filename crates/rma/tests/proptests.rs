//! Property tests for the resilience layer: retry backoff schedules and
//! the deterministic fault injector must behave algebraically — same
//! inputs, same schedule; caps respected; duplicates never failures.

use proptest::prelude::*;
use rma::{
    splitmix64, Completion, Endpoint, FaultPlan, FaultyTransport, NativeTransport, Retried,
    RetryExhausted, RetryPolicy, Transport, VerbClass, VerbError, VerbToken,
};
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId};
use std::sync::Arc;

fn class_of(i: u8) -> VerbClass {
    VerbClass::ALL[i as usize % VerbClass::COUNT]
}

fn sim(nodes: usize) -> Arc<Interconnect> {
    Interconnect::new(ClusterTopology::tiny(nodes), CostModel::paper_2011())
}

proptest! {
    /// The backoff before any retry is a pure function of
    /// (policy, class, retry index, salt): recomputing it gives the same
    /// cycles, and a different jitter seed gives a different schedule
    /// somewhere in the first few steps.
    #[test]
    fn prop_backoff_is_deterministic(
        seed in 0u64..u64::MAX,
        salt in 0u64..u64::MAX,
        class in 0u8..7,
        retry in 1u32..24,
    ) {
        let p = RetryPolicy::default().with_seed(seed);
        let c = class_of(class);
        prop_assert_eq!(p.backoff_step(c, retry, salt), p.backoff_step(c, retry, salt));
        let q = RetryPolicy::default().with_seed(seed ^ 0xDEAD_BEEF);
        let differs = (1..=8).any(|k| p.backoff_step(c, k, salt) != q.backoff_step(c, k, salt));
        prop_assert!(differs, "jitter seed had no effect on the first 8 steps");
    }

    /// Every step respects the exponential floor and the jittered ceiling:
    /// base<<k capped at max, plus at most 25% jitter on top.
    #[test]
    fn prop_backoff_respects_caps(
        seed in 0u64..u64::MAX,
        salt in 0u64..u64::MAX,
        class in 0u8..7,
        retry in 1u32..64,
        base in 1u64..100_000,
        cap in 1u64..10_000_000,
    ) {
        let p = RetryPolicy {
            base_backoff_cycles: base,
            max_backoff_cycles: cap,
            jitter_seed: seed,
            ..RetryPolicy::default()
        };
        let c = class_of(class);
        let step = p.backoff_step(c, retry, salt);
        let exp = base.checked_shl(retry - 1).unwrap_or(u64::MAX).min(cap);
        prop_assert!(step >= exp, "step {} below the exponential floor {}", step, exp);
        prop_assert!(
            step <= exp + exp / 4,
            "step {} exceeds floor {} + 25% jitter",
            step,
            exp
        );
    }

    /// `run` against a permanently failing verb spends exactly the attempt
    /// budget, reports the last error, and accumulates the full backoff
    /// schedule as its delay — deterministically.
    #[test]
    fn prop_exhaustion_spends_the_exact_budget(
        salt in 0u64..u64::MAX,
        class in 0u8..7,
        attempts in 1u32..12,
    ) {
        let c = class_of(class);
        let p = RetryPolicy::default().with_budget(c, attempts);
        let mut issued = 0u32;
        let err = p
            .run::<()>(c, salt, |a| {
                assert_eq!(a.index, issued, "attempts must be issued in order");
                issued += 1;
                Err(VerbError::Timeout)
            })
            .expect_err("the verb never succeeds");
        prop_assert_eq!(issued, attempts);
        prop_assert_eq!(err.attempts, attempts);
        prop_assert_eq!(err.last_error, VerbError::Timeout);
        let schedule: u64 = (1..attempts).map(|k| p.backoff_step(c, k, salt)).sum();
        prop_assert_eq!(err.delay, schedule);
    }

    /// The injector's schedule is reproducible: the same plan over the same
    /// single-issuer verb sequence yields the same ok/err pattern and the
    /// same injection counts — on a simulated *and* a native fabric.
    #[test]
    fn prop_fault_schedule_replays(
        seed in 0u64..u64::MAX,
        drops in 0u32..400_000,
        timeouts in 0u32..400_000,
        ops in proptest::collection::vec((0u8..4, 1u64..4096), 1..60),
    ) {
        let plan = FaultPlan::default()
            .with_seed(seed)
            .with_drops(drops)
            .with_timeouts(timeouts);
        fn drive<T: Transport>(
            fab: Arc<FaultyTransport<T>>,
            ops: &[(u8, u64)],
        ) -> Vec<Result<(), VerbError>> {
            let loc = fab.topology().loc(NodeId(0), 0);
            let mut e = <FaultyTransport<T> as Transport>::endpoint(&fab, loc);
            ops.iter()
                .map(|&(kind, bytes)| match kind {
                    0 => e.rdma_read(NodeId(1), bytes),
                    1 => e.rdma_write(NodeId(1), bytes).map(|_| ()),
                    2 => e.rdma_write_batch(NodeId(1), &[bytes]).map(|_| ()),
                    _ => e.rdma_cas(NodeId(1)),
                })
                .collect()
        }
        let a = FaultyTransport::wrap(sim(2), plan.clone());
        let b = FaultyTransport::wrap(sim(2), plan.clone());
        let pat_a = drive(a.clone(), &ops);
        prop_assert_eq!(&pat_a, &drive(b.clone(), &ops));
        prop_assert_eq!(a.injected(), b.injected());
        let n = FaultyTransport::wrap(NativeTransport::new(ClusterTopology::tiny(2)), plan);
        prop_assert_eq!(&pat_a, &drive(n.clone(), &ops));
        prop_assert_eq!(a.injected(), n.injected());
    }

    /// Duplicates are never failures: under a duplicates-only plan every
    /// verb succeeds, a duplicated verb's completion is no earlier than its
    /// issue time, and the inner fabric sees each duplicated verb exactly
    /// twice — the payload is idempotent, only the accounting doubles.
    #[test]
    fn prop_duplicates_are_idempotent_successes(
        seed in 0u64..u64::MAX,
        rate in 1u32..1_000_001,
        ops in proptest::collection::vec((0u8..3, 1u64..8192, 0u64..1_000_000), 1..50),
    ) {
        let plan = FaultPlan::default().with_seed(seed).with_duplicates(rate);
        let fab = FaultyTransport::wrap(sim(2), plan);
        let loc = fab.topology().loc(NodeId(0), 0);
        for &(kind, bytes, at) in &ops {
            let c = match kind {
                0 => Transport::rdma_read(&*fab, loc, NodeId(1), at, bytes),
                1 => Transport::rdma_write(&*fab, loc, NodeId(1), at, bytes),
                _ => Transport::rdma_cas(&*fab, loc, NodeId(1), at),
            };
            let c = c.expect("duplication must never fail a verb");
            prop_assert!(c.initiator_done > at, "a verb must cost time");
            prop_assert!(c.settled >= c.initiator_done);
        }
        let snap = fab.injected();
        // A duplicates-only plan must inject nothing but duplicates.
        prop_assert_eq!(snap.total(), snap.duplicated);
        // Each duplicate is delivered (and accounted) exactly twice.
        let issued = ops.len() as u64;
        let inner_ops = {
            let s = fab.stats().snapshot();
            s.rdma_reads + s.rdma_writes + s.rdma_atomics
        };
        prop_assert_eq!(inner_ops, issued + snap.duplicated);
    }

    /// Completion poll order is immaterial: issue a batch of verbs, then
    /// resolve the tokens in issue order on one fabric and in an arbitrary
    /// permutation on an identical fabric. Every per-verb completion and
    /// the merged clock horizon must come out the same — on the simulated
    /// *and* the native backend.
    #[test]
    fn prop_poll_order_never_changes_results(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0u8..3, 1u64..8192, 0u64..200_000), 2..40),
    ) {
        fn drive<T: Transport>(
            fab: &Arc<T>,
            ops: &[(u8, u64, u64)],
            shuffle_seed: Option<u64>,
        ) -> (Vec<Completion>, u64) {
            let loc = fab.topology().loc(NodeId(0), 0);
            let mut e = T::endpoint(fab, loc);
            let mut tokens: Vec<Option<VerbToken>> = ops
                .iter()
                .map(|&(kind, bytes, nb)| match kind {
                    0 => e.issue_read(NodeId(1), bytes, nb),
                    1 => e.issue_write(NodeId(1), bytes, nb),
                    _ => e.issue_write_batch(NodeId(1), &[bytes, bytes / 2 + 1], nb),
                })
                .map(Some)
                .collect();
            let mut order: Vec<usize> = (0..tokens.len()).collect();
            if let Some(s) = shuffle_seed {
                for i in (1..order.len()).rev() {
                    let j = (splitmix64(s ^ (i as u64)) % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
            }
            let mut done: Vec<Option<Completion>> = vec![None; tokens.len()];
            for &i in &order {
                let c = e
                    .poll(tokens[i].take().expect("each token polled once"))
                    .expect("every backend today resolves by poll time")
                    .expect("healthy fabric");
                done[i] = Some(c);
            }
            let horizon = done.iter().map(|c| c.unwrap().initiator_done).max().unwrap();
            e.merge(horizon);
            (done.into_iter().map(Option::unwrap).collect(), e.now())
        }
        let (in_order, clock_a) = drive(&sim(2), &ops, None);
        let (permuted, clock_b) = drive(&sim(2), &ops, Some(seed));
        prop_assert_eq!(&in_order, &permuted);
        prop_assert_eq!(clock_a, clock_b);
        let nat = || NativeTransport::new(ClusterTopology::tiny(2));
        let (n_in_order, n_clock_a) = drive(&nat(), &ops, None);
        let (n_permuted, n_clock_b) = drive(&nat(), &ops, Some(seed));
        prop_assert_eq!(&n_in_order, &n_permuted);
        prop_assert_eq!(n_clock_a, n_clock_b);
    }

    /// A `VerbError` surfacing at poll time retries identically to the
    /// blocking path: walking `attempt_seq` across the issue/poll gap —
    /// reissue on each polled failure, merge only on success — produces
    /// the same per-op outcomes (retry counts, backoff delays, settle
    /// stamps, exhaustions), the same injected-fault totals, and the same
    /// final clock as `RetryPolicy::run` around the blocking verbs.
    #[test]
    fn prop_poll_time_retry_matches_blocking_path(
        fault_seed in 0u64..u64::MAX,
        jitter_seed in 0u64..u64::MAX,
        budget in 1u32..8,
        drops in 50_000u32..600_000,
        timeouts in 50_000u32..600_000,
        ops in proptest::collection::vec((0u8..3, 1u64..8192, 0u64..u64::MAX), 1..40),
    ) {
        type Outcome = Result<Retried<u64>, RetryExhausted>;
        let plan = FaultPlan::default()
            .with_seed(fault_seed)
            .with_drops(drops)
            .with_timeouts(timeouts);
        let policy = RetryPolicy {
            max_attempts: [budget; VerbClass::COUNT],
            ..RetryPolicy::default().with_seed(jitter_seed)
        };
        let class = |kind: u8| match kind {
            0 => VerbClass::PageFetch,
            1 => VerbClass::Downgrade,
            _ => VerbClass::DrainBatch,
        };
        let blocking = {
            let fab = FaultyTransport::wrap(sim(2), plan.clone());
            let loc = fab.topology().loc(NodeId(0), 0);
            let mut e = <FaultyTransport<_> as Transport>::endpoint(&fab, loc);
            let outs: Vec<Outcome> = ops
                .iter()
                .map(|&(kind, bytes, salt)| {
                    policy.run(class(kind), salt, |_a| match kind {
                        0 => e.rdma_read(NodeId(1), bytes).map(|_| 0),
                        1 => e.rdma_write(NodeId(1), bytes),
                        _ => e.rdma_write_batch(NodeId(1), &[bytes]),
                    })
                })
                .collect();
            (outs, e.now(), fab.injected())
        };
        let polled = {
            let fab = FaultyTransport::wrap(sim(2), plan);
            let loc = fab.topology().loc(NodeId(0), 0);
            let mut e = <FaultyTransport<_> as Transport>::endpoint(&fab, loc);
            let outs: Vec<Outcome> = ops
                .iter()
                .map(|&(kind, bytes, salt)| {
                    let mut seq = policy.attempt_seq(class(kind), salt);
                    let mut attempt = seq.next().expect("budget is at least 1");
                    loop {
                        let token = match kind {
                            0 => e.issue_read(NodeId(1), bytes, e.now()),
                            1 => e.issue_write(NodeId(1), bytes, e.now()),
                            _ => e.issue_write_batch(NodeId(1), &[bytes], e.now()),
                        };
                        match e.wait(token) {
                            Ok(c) => {
                                e.merge(c.initiator_done);
                                break Ok(Retried {
                                    value: if kind == 0 { 0 } else { c.settled },
                                    retries: attempt.index,
                                    delay: attempt.delay,
                                });
                            }
                            Err(err) => match seq.next() {
                                Some(a) => attempt = a,
                                None => break Err(seq.exhausted(err)),
                            },
                        }
                    }
                })
                .collect();
            (outs, e.now(), fab.injected())
        };
        prop_assert_eq!(&blocking.0, &polled.0);
        prop_assert_eq!(blocking.1, polled.1);
        prop_assert_eq!(blocking.2, polled.2);
    }
}
