//! Quickstart: shared-memory programming across a simulated cluster.
//!
//! Builds a 4-node Argo machine (4 threads per node), allocates a global
//! array, fills it in parallel, and computes a checksum after a barrier —
//! the "hello world" of DSM programming. Prints the run report: virtual
//! execution time, coherence events, and network traffic.
//!
//! Run: `cargo run --release --example quickstart`

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};

fn main() {
    let machine = ArgoMachine::new(ArgoConfig::small(4, 4));
    println!(
        "Argo machine: {} nodes x {} threads, {} MiB global memory",
        machine.config().nodes,
        machine.config().threads_per_node,
        machine.dsm().total_bytes() >> 20
    );

    const N: usize = 100_000;
    let data = GlobalF64Array::alloc(machine.dsm(), N);

    let report = machine.run(move |ctx| {
        // Each thread initializes its block of the array...
        for i in ctx.my_chunk(N) {
            data.set(ctx, i, (i as f64).sqrt());
        }
        ctx.start_measurement();
        // ...the barrier publishes everyone's writes (SD) and invalidates
        // stale copies (SI) — the Carina fences are implicit...
        ctx.barrier();
        // ...then every thread reads the whole array through its node's
        // page cache.
        let mut local = vec![0.0f64; N];
        ctx.read_f64_slice(data.base(), &mut local);
        local.iter().sum::<f64>()
    });

    let expect: f64 = (0..N).map(|i| (i as f64).sqrt()).sum();
    for (tid, sum) in report.results.iter().enumerate() {
        assert!(
            (sum - expect).abs() < 1e-6 * expect,
            "thread {tid} read a stale value"
        );
    }
    println!("checksum OK on all {} threads: {:.3}", report.results.len(), expect);
    println!(
        "virtual time: {:.3} ms ({} cycles)",
        report.seconds * 1e3,
        report.cycles
    );
    println!(
        "coherence: {} read misses, {} writebacks, {} pages kept by classification",
        report.coherence.read_misses, report.coherence.writebacks, report.coherence.si_kept
    );
    println!(
        "network: {} one-sided reads ({} KiB), {} message handlers (always 0 for Argo)",
        report.net.rdma_reads,
        report.net.bytes_read >> 10,
        report.net.handler_invocations
    );
}
