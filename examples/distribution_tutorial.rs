//! Tutorial: data placement matters — and how to control it.
//!
//! Runs the same chunked kernel (scale a big vector in place, barrier,
//! sum it) three ways:
//!   1. default interleaved homes (the paper's prototype),
//!   2. per-allocation blocked homes (`alloc_blocked`: each thread's chunk
//!      lands on its own node),
//!   3. blocked homes *with mismatched chunking* (threads deliberately work
//!      on another node's block) — placement can hurt, too.
//!
//! Run: `cargo run --release --example distribution_tutorial`

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};

const N: usize = 1 << 17;
const SWEEPS: usize = 4;

fn run(label: &str, blocked: bool, rotate_chunks: bool) {
    let machine = ArgoMachine::new(ArgoConfig::small(4, 4));
    let data = if blocked {
        GlobalF64Array::alloc_blocked(machine.dsm(), N)
    } else {
        GlobalF64Array::alloc(machine.dsm(), N)
    };
    let report = machine.run(move |ctx| {
        // Optionally work on the "wrong" chunk: the one belonging to the
        // next node's threads.
        let nt = ctx.nthreads();
        let shift = if rotate_chunks { 4 } else { 0 };
        let tid = (ctx.tid() + shift) % nt;
        let per = N.div_ceil(nt);
        let lo = (tid * per).min(N);
        let hi = ((tid + 1) * per).min(N);
        for i in lo..hi {
            data.set(ctx, i, i as f64);
        }
        ctx.start_measurement();
        ctx.barrier();
        let mut buf = vec![0.0f64; hi - lo];
        let mut acc = 0.0;
        for _ in 0..SWEEPS {
            ctx.read_f64_slice(data.addr(lo), &mut buf);
            for v in &mut buf {
                *v *= 1.0000001;
            }
            ctx.thread.compute((hi - lo) as u64 * 2);
            ctx.write_f64_slice(data.addr(lo), &buf);
            acc += buf[0];
            ctx.barrier();
        }
        acc
    });
    println!("--- {label} ---");
    print!("{}", report.summary());
}

fn main() {
    run("interleaved homes (default)", false, false);
    run("blocked allocation, aligned chunks", true, false);
    run("blocked allocation, rotated chunks (anti-pattern)", true, true);
    println!();
    println!("Aligned blocked placement turns every access home-local (zero network");
    println!("reads); rotating the chunks makes the same placement maximally wrong.");
}
