//! Determinism probe: drives the Carina protocol engine through a fixed
//! scripted scenario from a *single host thread* (so every interleaving is
//! deterministic) and prints the resulting coherence statistics, virtual
//! clocks, and a memory checksum.
//!
//! Host-side performance work on the engine must not change anything this
//! prints: run it before and after a change and diff the output.
//!
//! ```sh
//! cargo run --release --example determinism_probe > after.txt
//! diff before.txt after.txt
//! ```


// Indexed loops below mirror the reference kernels (multi-array accesses
// keyed by one index); iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]
use carina::{CarinaConfig, ClassificationMode, Coherence, Dsm, Tardis};
use mem::{CacheConfig, GlobalAddr, PAGE_BYTES};
use rma::{Endpoint as _, FaultPlan, FaultyTransport, SimTransport, Transport};
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

fn cluster<C: Coherence>(
    nodes: usize,
    config: CarinaConfig,
) -> (Arc<Dsm<SimTransport, C>>, Vec<SimThread>) {
    let topo = ClusterTopology::tiny(nodes);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::with_policy(net.clone(), 4 << 20, config);
    let threads = (0..nodes)
        .map(|n| SimThread::new(topo.loc(NodeId(n as u16), 0), net.clone()))
        .collect();
    (dsm, threads)
}

/// A fixed workout touching every protocol path: misses, hits, write
/// faults, false sharing, fences, evictions, buffer overflow, and decay.
/// Generic over the coherence policy so the same script pins both the
/// SI/SD engine and the Tardis lease engine.
fn workout<C: Coherence>(header: String, mode: ClassificationMode) {
    let nodes = 3usize;
    let mut cfg = CarinaConfig::with_mode(mode);
    cfg.cache = CacheConfig::new(64, 2); // small enough to force conflicts
    cfg.write_buffer_pages = 4; // small enough to overflow
    let (dsm, mut ts) = cluster::<C>(nodes, cfg);

    // Phase 1: every node reads a shared region homed across the cluster.
    for round in 0..3u64 {
        for n in 0..nodes {
            let t = &mut ts[n];
            for p in 0..24u64 {
                let a = GlobalAddr((p + 1) * PAGE_BYTES + (round % 8) * 64);
                let _ = dsm.read_u64(t, a);
            }
        }
    }
    // Phase 2: staggered writers create P/S + SW/MW mixes and overflow the
    // write buffer.
    for round in 0..4u64 {
        for n in 0..nodes {
            let t = &mut ts[n];
            for p in 0..12u64 {
                let a = GlobalAddr((p + 1 + (n as u64 % 2) * 6) * PAGE_BYTES + round * 8);
                dsm.write_u64(t, a, round * 1000 + p * 10 + n as u64);
            }
            dsm.sd_fence(t);
        }
        for n in 0..nodes {
            dsm.si_fence(&mut ts[n]);
        }
    }
    // Phase 3: conflict evictions (pages far apart map to the same slots).
    for n in 0..nodes {
        let t = &mut ts[n];
        for k in 0..8u64 {
            let a = GlobalAddr((1 + k * 128) * PAGE_BYTES);
            dsm.write_u64(t, a, k + n as u64);
            let _ = dsm.read_u64(t, a);
        }
        dsm.sd_fence(t);
    }
    // Phase 4: slices, both u64 and f64.
    let mut buf = vec![0u64; 1500];
    dsm.write_u64_slice(
        &mut ts[0],
        GlobalAddr(40 * PAGE_BYTES),
        &(0..1500u64).map(|i| i * 3 + 1).collect::<Vec<_>>(),
    );
    dsm.read_u64_slice(&mut ts[1], GlobalAddr(40 * PAGE_BYTES), &mut buf);
    let mut fbuf = vec![0f64; 700];
    dsm.write_f64_slice(
        &mut ts[2],
        GlobalAddr(50 * PAGE_BYTES),
        &(0..700).map(|i| i as f64 * 0.5 - 3.0).collect::<Vec<_>>(),
    );
    dsm.read_f64_slice(&mut ts[0], GlobalAddr(50 * PAGE_BYTES), &mut fbuf);
    for t in &mut ts {
        dsm.sd_fence(t);
        dsm.si_fence(t);
    }
    // Phase 5: decay, then a second ownership pattern.
    dsm.decay_classification(&mut ts[0]);
    for n in 0..nodes {
        let t = &mut ts[n];
        for p in 0..6u64 {
            let a = GlobalAddr((60 + p + n as u64 * 6) * PAGE_BYTES);
            dsm.write_u64(t, a, p + 100 * n as u64);
        }
        dsm.sd_fence(t);
        dsm.si_fence(t);
    }

    let v = dsm.check_invariants();
    assert!(v.is_empty(), "invariants violated: {v:?}");

    // Checksum of home memory over the touched region.
    let mut checksum = 0u64;
    for p in 0..200u64 {
        for w in (0..mem::WORDS_PER_PAGE as u64).step_by(7) {
            checksum = checksum
                .wrapping_mul(1099511628211)
                .wrapping_add(dsm.peek_u64(GlobalAddr(p * PAGE_BYTES + w * 8)));
        }
    }
    let slice_sum: u64 = buf.iter().sum();
    let fslice_sum: f64 = fbuf.iter().sum();
    let s = dsm.stats().snapshot();
    println!("=== {header} ===");
    println!("checksum        {checksum}");
    println!("slice_sum       {slice_sum}");
    println!("fslice_sum      {fslice_sum}");
    for (n, t) in ts.iter().enumerate() {
        println!("clock[{n}]        {}", t.now());
    }
    println!("{s:#?}");
    println!("net {:#?}", dsm.net().stats().snapshot());
}

/// The faulted half of the probe: the same style of fixed single-threaded
/// scenario, but driven through a [`FaultyTransport`] with a seeded plan.
/// Everything here is deterministic — the fault schedule is a pure function
/// of the seed and the verb sequence, the backoff schedule of the retry
/// policy — so the checksum, the clocks, the injection counts, *and* the
/// retry counters are all pinned by the committed baseline. The checksum
/// must also be bit-identical to the fault-free run of the same scenario:
/// faults may only ever perturb timing and accounting.
fn faulted_scenario(plan: FaultPlan) -> (u64, Vec<u64>, u64, u64, rma::FaultSnapshot) {
    let nodes = 3usize;
    let topo = ClusterTopology::tiny(nodes);
    let net = FaultyTransport::wrap(Interconnect::new(topo, CostModel::paper_2011()), plan);
    let dsm: Arc<Dsm<FaultyTransport<SimTransport>>> =
        Dsm::new(net.clone(), 4 << 20, CarinaConfig::default());
    let mut ts: Vec<_> = (0..nodes)
        .map(|n| <FaultyTransport<SimTransport> as Transport>::endpoint(&net, topo.loc(NodeId(n as u16), 0)))
        .collect();
    for round in 0..4u64 {
        for n in 0..nodes {
            let t = &mut ts[n];
            for p in 0..16u64 {
                let a = GlobalAddr((p + 1) * PAGE_BYTES + round * 16);
                dsm.write_u64(t, a, round * 1000 + p * 10 + n as u64);
                let _ = dsm.read_u64(t, a);
            }
            dsm.sd_fence(t);
        }
        for n in 0..nodes {
            dsm.si_fence(&mut ts[n]);
        }
    }
    let v = dsm.check_invariants();
    assert!(v.is_empty(), "invariants violated under faults: {v:?}");
    let mut checksum = 0u64;
    for p in 0..24u64 {
        for w in (0..mem::WORDS_PER_PAGE as u64).step_by(7) {
            checksum = checksum
                .wrapping_mul(1099511628211)
                .wrapping_add(dsm.peek_u64(GlobalAddr(p * PAGE_BYTES + w * 8)));
        }
    }
    let s = dsm.stats().snapshot();
    (
        checksum,
        ts.iter().map(|t| t.now()).collect(),
        s.verb_retries,
        s.verb_exhaustions,
        net.injected(),
    )
}

fn faulted_probe(seed: u64) {
    let (clean_sum, _, clean_retries, _, _) = faulted_scenario(FaultPlan::disabled());
    assert_eq!(clean_retries, 0, "a healthy fabric must not retry");
    let (sum, clocks, retries, exhaustions, injected) = faulted_scenario(FaultPlan::seeded(seed));
    println!("=== faulted seed {seed} ===");
    println!("checksum        {sum}");
    println!("matches_clean   {}", sum == clean_sum);
    for (n, c) in clocks.iter().enumerate() {
        println!("clock[{n}]        {c}");
    }
    println!("verb_retries    {retries}");
    println!("verb_exhaustions {exhaustions}");
    println!("injected {injected:?}");
    assert_eq!(sum, clean_sum, "faults changed the data plane");
    assert_eq!(exhaustions, 0, "a mild plan exhausted a retry budget");
}

/// The failover probe: the same fixed single-threaded scenario, but a node
/// dies mid-script — an outage window opens partway through and never
/// clears, so the next verb against the node exhausts its budget and the
/// Volans sweep declares it departed, re-homes its pages, and the script
/// keeps going against the survivors. Everything is deterministic: the
/// death point (virtual time), the declaration, the rendezvous re-homing,
/// the retry accounting, and the final checksum — which must also be
/// bit-identical to the fault-free run (failover never touches data).
#[allow(clippy::type_complexity)]
fn failover_scenario(
    plan: FaultPlan,
) -> (
    u64,
    Vec<u64>,
    carina::CoherenceSnapshot,
    u64,
    usize,
    rma::FaultSnapshot,
) {
    let nodes = 3usize;
    let topo = ClusterTopology::tiny(nodes);
    let net = FaultyTransport::wrap(Interconnect::new(topo, CostModel::paper_2011()), plan);
    let cfg = CarinaConfig { volans_failover: true, ..Default::default() };
    let dsm: Arc<Dsm<FaultyTransport<SimTransport>>> = Dsm::new(net.clone(), 4 << 20, cfg);
    let mut ts: Vec<_> = (0..nodes)
        .map(|n| {
            <FaultyTransport<SimTransport> as Transport>::endpoint(
                &net,
                topo.loc(NodeId(n as u16), 0),
            )
        })
        .collect();
    for round in 0..6u64 {
        for n in 0..nodes {
            let t = &mut ts[n];
            for p in 0..16u64 {
                let a = GlobalAddr((p + 1) * PAGE_BYTES + round * 16);
                dsm.write_u64(t, a, round * 1000 + p * 10 + n as u64);
                let _ = dsm.read_u64(t, a);
            }
            dsm.sd_fence(t);
        }
        for n in 0..nodes {
            dsm.si_fence(&mut ts[n]);
        }
    }
    let v = dsm.check_invariants();
    assert!(v.is_empty(), "invariants violated across the failover: {v:?}");
    let mut checksum = 0u64;
    for p in 0..24u64 {
        for w in (0..mem::WORDS_PER_PAGE as u64).step_by(7) {
            checksum = checksum
                .wrapping_mul(1099511628211)
                .wrapping_add(dsm.peek_u64(GlobalAddr(p * PAGE_BYTES + w * 8)));
        }
    }
    (
        checksum,
        ts.iter().map(|t| t.now()).collect(),
        dsm.stats().snapshot(),
        dsm.membership().epoch(),
        dsm.membership().nodes_alive(),
        net.injected(),
    )
}

fn failover_probe() {
    let (clean_sum, _, clean_stats, clean_epoch, _, _) =
        failover_scenario(FaultPlan::disabled());
    assert_eq!(clean_stats.verb_retries, 0, "a healthy fabric must not retry");
    assert_eq!(clean_epoch, 0, "armed Volans must be zero-cost while idle");
    // The window opens after the early rounds have spread data and
    // registrations across all three nodes, and never clears: a scripted
    // mid-run death of node 2.
    let (sum, clocks, s, epoch, alive, injected) =
        failover_scenario(FaultPlan::outage(NodeId(2), 400_000, u64::MAX));
    println!("=== failover: node 2 dies mid-script ===");
    println!("checksum        {sum}");
    println!("matches_clean   {}", sum == clean_sum);
    for (n, c) in clocks.iter().enumerate() {
        println!("clock[{n}]        {c}");
    }
    println!("verb_retries    {}", s.verb_retries);
    println!("verb_exhaustions {}", s.verb_exhaustions);
    println!("failovers       {}", s.failovers);
    println!("pages_rehomed   {}", s.pages_rehomed);
    println!("membership_epoch {epoch}");
    println!("nodes_alive     {alive}");
    println!("injected {injected:?}");
    assert_eq!(sum, clean_sum, "the failover changed the data plane");
    assert_eq!(s.failovers, 1, "the mid-script death must be declared exactly once");
    assert_eq!(epoch, 1);
    assert_eq!(alive, 2);
    assert!(injected.stalled > 0, "the outage window never fired");
}

fn main() {
    // `determinism_probe tardis` pins the timestamp-lease policy against
    // results/determinism_baseline_tardis.txt, `determinism_probe pyxis`
    // pins the hybrid (mode switches included) against
    // results/determinism_baseline_pyxis.txt; the default run pins the
    // SI/SD policy (all three classification modes) plus the faulted
    // sections against results/determinism_baseline.txt.
    match std::env::args().nth(1).as_deref() {
        Some("tardis") => {
            workout::<Tardis>("policy tardis".to_string(), ClassificationMode::Ps3);
            return;
        }
        Some("pyxis") => {
            workout::<carina::Pyxis>("policy pyxis".to_string(), ClassificationMode::Ps3);
            return;
        }
        // `determinism_probe failover` pins the Volans failover sweep —
        // scripted mid-run node death, declaration, rendezvous re-homing —
        // against results/determinism_baseline_failover.txt.
        Some("failover") => {
            failover_probe();
            return;
        }
        _ => {}
    }
    for mode in [
        ClassificationMode::AllShared,
        ClassificationMode::PsNaive,
        ClassificationMode::Ps3,
    ] {
        workout::<carina::CarinaSiSd>(format!("mode {mode:?}"), mode);
    }
    for seed in [2026u64, 4052] {
        faulted_probe(seed);
    }
}

