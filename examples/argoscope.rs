//! Argoscope: the observability layer end to end, on both backends.
//!
//! Runs one instrumented workload — striped writes, cluster-wide reads,
//! and HQDL-delegated critical sections — on the virtual-time simulator
//! and on the native shared-memory transport, then prints everything the
//! run can tell you about itself:
//!
//! - the run summary (coherence, downgrade batching, network traffic),
//! - per-site latency histograms (virtual cycles on sim, wall ns native),
//! - the per-lock delegation table (local vs remote execution, queue
//!   waits, batch sizes, handovers),
//! - a page census: P/S × NW/SW/MW classification matrix and the hottest
//!   pages by read-miss count.
//!
//! It also exports machine-readable artifacts under `target/argoscope/`:
//! `trace_<backend>.json` (Perfetto/chrome://tracing-loadable event trace)
//! and `report_<backend>.json` (the full `RunReport::to_json()` document).
//!
//! Run: `cargo run --release --example argoscope`

use argo::types::GlobalU64Array;
use argo::{ArgoConfig, ArgoMachine, RunReport};
use obs::{JsonValue, Site};
use rma::Transport;
use std::sync::Arc;

const CELLS: usize = 8192;
const SECTIONS_PER_THREAD: usize = 100;

fn workload<T: Transport>(machine: &Arc<ArgoMachine<T>>) -> RunReport<u64> {
    let dsm = machine.dsm().clone();
    let arr = GlobalU64Array::alloc(machine.dsm(), CELLS);
    let counter = GlobalU64Array::alloc(machine.dsm(), 1).addr(0);
    let ledger = vela::Hqdl::new_named(dsm.clone(), 64, "ledger");
    machine.run(move |ctx| {
        // Phase 1: every thread fills its stripe (write faults, twins).
        for i in ctx.my_chunk(CELLS) {
            arr.set(ctx, i, i as u64);
        }
        ctx.barrier();
        // Phase 2: every thread sums the whole array (read misses).
        let mut sum = 0u64;
        for i in 0..CELLS {
            sum += arr.get(ctx, i);
        }
        ctx.barrier();
        // Phase 3: delegated critical sections on a shared counter.
        for _ in 0..SECTIONS_PER_THREAD {
            let d = dsm.clone();
            ledger.delegate_wait(&mut ctx.thread, move |ht| {
                let v = d.read_u64(ht, counter);
                d.write_u64(ht, counter, v + 1);
            });
        }
        ctx.barrier();
        sum
    })
}

fn inspect<T: Transport>(machine: &Arc<ArgoMachine<T>>, backend: &str) {
    println!("==== argoscope: {backend} backend ====");
    machine.dsm().tracer().set_enabled(true);
    let report = workload(machine);

    let expect: u64 = (0..CELLS as u64).sum();
    assert!(report.results.iter().all(|&s| s == expect), "bad checksum");

    print!("{}", report.summary());
    println!("latency profile ({}):", if report.cycles > 0 { "virtual cycles" } else { "wall ns" });
    print!("{}", report.profile.render());
    println!("locks:");
    for lock in &report.locks {
        println!("  {}", lock.render());
    }
    let census = machine.dsm().census(5);
    print!("{}", census.render());

    // The whole point: these histograms must actually have samples.
    assert!(report.profile.get(Site::ReadMiss).count() > 0, "no read misses recorded");
    assert!(report.profile.get(Site::LockAcquire).count() > 0, "no lock acquires recorded");
    assert!(report.profile.get(Site::BarrierWait).count() > 0, "no barrier waits recorded");
    assert_eq!(report.locks.len(), 1, "the ledger lock must be registered");
    assert!(report.locks[0].delegations > 0);

    // Export artifacts; both must parse as JSON (the trace is what Perfetto
    // loads, the report is what scripts consume).
    let dir = std::path::Path::new("target/argoscope");
    std::fs::create_dir_all(dir).expect("create artifact dir");
    let trace = machine.dsm().tracer().to_chrome_trace();
    let trace_doc = JsonValue::parse(&trace).expect("trace must be valid JSON");
    let stats = machine.dsm().tracer().stats();
    assert!(
        !trace_doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty(),
        "trace must hold events"
    );
    let trace_path = dir.join(format!("trace_{backend}.json"));
    std::fs::write(&trace_path, &trace).expect("write trace");
    let report_json = report.to_json();
    JsonValue::parse(&report_json).expect("report must be valid JSON");
    let report_path = dir.join(format!("report_{backend}.json"));
    std::fs::write(&report_path, &report_json).expect("write report");

    // Lyra artifacts: the flight-recorder dump as a chrome trace with
    // span flow arrows, and the live metrics in both expositions.
    let lyra = machine.dsm().lyra().to_chrome_trace();
    let lyra_doc = JsonValue::parse(&lyra).expect("lyra dump must be valid JSON");
    assert!(
        !lyra_doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty(),
        "flight recorder must hold records"
    );
    let lyra_path = dir.join(format!("lyra_{backend}.json"));
    std::fs::write(&lyra_path, &lyra).expect("write lyra dump");
    let metrics = machine.dsm().metrics_snapshot();
    let prom_path = dir.join(format!("metrics_{backend}.prom"));
    std::fs::write(&prom_path, metrics.to_prometheus()).expect("write metrics");
    let metrics_json = metrics.to_json();
    JsonValue::parse(&metrics_json).expect("metrics must be valid JSON");
    let metrics_path = dir.join(format!("metrics_{backend}.json"));
    std::fs::write(&metrics_path, &metrics_json).expect("write metrics json");

    println!(
        "trace  : {} ({} events buffered, {} dropped)",
        trace_path.display(),
        stats.buffered,
        stats.dropped
    );
    println!("report : {}", report_path.display());
    println!(
        "lyra   : {} ({} records kept, {} dropped)",
        lyra_path.display(),
        report.recorder.kept,
        report.recorder.dropped
    );
    println!("metrics: {} (+ .json)", prom_path.display());
    println!();
}

fn main() {
    let cfg = ArgoConfig::small(2, 2);
    inspect(&ArgoMachine::new(cfg), "sim");
    inspect(&ArgoMachine::native(cfg), "native");
    println!("load the traces at https://ui.perfetto.dev or chrome://tracing");
}
