//! A guided tour of the Carina protocol: watch the Pyxis classification
//! evolve exactly as in the paper's Figures 3-5.
//!
//! Drives a 3-node DSM by hand (no thread team) and prints the home
//! directory view and each node's cached view after every step: first
//! read (Private), second node joins (P→S, deferred invalidation), first
//! write (NW→SW, the single writer keeps its copy across fences), second
//! writer (SW→MW, diffs reconcile false sharing).
//!
//! Run: `cargo run --release --example protocol_tour`

use carina::{CarinaConfig, Dsm, PageClass, WriterClass};
use mem::{GlobalAddr, PAGE_BYTES};
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};

fn class_str(dsm: &Dsm, addr: GlobalAddr) -> String {
    let v = dsm.home_dir_view(addr);
    let p = match v.page_class() {
        PageClass::Private => "P",
        PageClass::Shared => "S",
    };
    let w = match v.writer_class() {
        WriterClass::None => "NW".to_string(),
        WriterClass::Single(n) => format!("SW(n{n})"),
        WriterClass::Multiple => "MW".to_string(),
    };
    format!("{p},{w} readers={:#06b} writers={:#06b}", v.readers, v.writers)
}

fn main() {
    let topo = ClusterTopology::tiny(3);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::new(net.clone(), 4 << 20, CarinaConfig::default());
    dsm.tracer().set_enabled(true);
    let mut t: Vec<SimThread> = (0..3)
        .map(|n| SimThread::new(topo.loc(NodeId(n), 0), net.clone()))
        .collect();
    // A page homed on node 2, so nodes 0 and 1 both cache it remotely.
    let addr = GlobalAddr(5 * PAGE_BYTES);
    let addr2 = addr.offset(8);

    println!("page {} homed on node {}", addr.page().0, dsm.home_of(addr));

    println!("\n-- node 0 reads (Figure 3: first access) --");
    dsm.read_u64(&mut t[0], addr);
    println!("home dir: {}", class_str(&dsm, addr));
    assert!(dsm.home_dir_view(addr).is_private_to(0));

    println!("\n-- node 1 reads (P->S; node 0 notified passively) --");
    dsm.read_u64(&mut t[1], addr);
    println!("home dir: {}", class_str(&dsm, addr));
    println!(
        "node 0's cached dir entry now shows shared: {:?} (deferred invalidation: node 0 acts only at its next fence)",
        dsm.dir_view(0, addr).page_class()
    );

    println!("\n-- node 0 writes (NW->SW; Figure 5) --");
    dsm.write_u64(&mut t[0], addr, 42);
    println!("home dir: {}", class_str(&dsm, addr));

    println!("\n-- node 0 releases (SD fence: diff travels to home) --");
    dsm.sd_fence(&mut t[0]);
    println!("home copy of word 0: {}", dsm.peek_u64(addr));

    println!("\n-- node 0's SI fence keeps the page (it is the single writer) --");
    dsm.si_fence(&mut t[0]);
    let s = dsm.stats().snapshot();
    println!("si_kept={} si_invalidated={}", s.si_kept, s.si_invalidated);

    println!("\n-- node 1 acquires (SI fence): invalidates, rereads 42 --");
    dsm.si_fence(&mut t[1]);
    let v = dsm.read_u64(&mut t[1], addr);
    println!("node 1 reads {v}");
    assert_eq!(v, 42);

    println!("\n-- node 1 writes a different word (SW->MW; false sharing) --");
    dsm.write_u64(&mut t[1], addr2, 7);
    println!("home dir: {}", class_str(&dsm, addr));
    println!(
        "node 0 (old single writer) sees MW in its cached entry: {:?}",
        dsm.dir_view(0, addr).writer_class()
    );

    println!("\n-- both release; diffs merge disjoint words at home --");
    dsm.sd_fence(&mut t[1]);
    dsm.sd_fence(&mut t[0]);
    println!(
        "home words: [{}, {}]  (42 from node 0, 7 from node 1)",
        dsm.peek_u64(addr),
        dsm.peek_u64(addr2)
    );
    assert_eq!(dsm.peek_u64(addr), 42);
    assert_eq!(dsm.peek_u64(addr2), 7);

    let s = dsm.stats().snapshot();
    println!(
        "\nprotocol events: {} P->S, {} NW->SW, {} SW->MW, {} twins, {} diff words",
        s.p_to_s, s.nw_to_sw, s.sw_to_mw, s.twins_created, s.diff_words
    );
    println!(
        "message handlers executed anywhere: {} (the Pyxis property)",
        net.stats().snapshot().handler_invocations
    );

    println!("\n== raw protocol trace ==");
    for ev in dsm.tracer().events() {
        println!("{ev}");
    }
}
