//! A producer → transformer → consumer pipeline across three cluster
//! nodes, synchronized with Vela signal/wait flags — the point-to-point
//! primitive the paper lists in §4, and a showcase for the single-writer
//! classification: each stage's output pages have exactly one writer, so
//! the writer keeps its pages across its own fences while downstream
//! readers re-fetch only what changed.
//!
//! Run: `cargo run --release --example pipeline`

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};
use simnet::NodeId;
use std::sync::Arc;
use vela::DsmFlag;

const BATCHES: usize = 8;
const BATCH: usize = 512;

fn main() {
    // 3 nodes, 1 thread each: stage i on node i.
    let machine = ArgoMachine::new(ArgoConfig::small(3, 1));
    let dsm = machine.dsm();
    let raw = GlobalF64Array::alloc(dsm, BATCH);
    let cooked = GlobalF64Array::alloc(dsm, BATCH);
    let produced = DsmFlag::new(dsm.clone(), NodeId(0));
    let transformed = DsmFlag::new(dsm.clone(), NodeId(1));
    let consumed = DsmFlag::new(dsm.clone(), NodeId(2));

    let report = machine.run(move |ctx| {
        let stage = ctx.node();
        let mut checksum = 0.0;
        for batch in 0..BATCHES as u64 {
            match stage {
                0 => {
                    // Producer: wait for the consumer to release the slot.
                    if batch > 0 {
                        produced_wait(&consumed, ctx, batch - 1);
                    }
                    for i in 0..BATCH {
                        raw.set(ctx, i, batch as f64 * 1000.0 + i as f64);
                    }
                    produced.signal(&mut ctx.thread);
                }
                1 => {
                    // Transformer: raw -> cooked.
                    produced_wait(&produced, ctx, batch);
                    let mut buf = vec![0.0; BATCH];
                    ctx.read_f64_slice(raw.base(), &mut buf);
                    for v in &mut buf {
                        *v = v.sqrt();
                    }
                    ctx.thread.compute(BATCH as u64 * 20);
                    ctx.write_f64_slice(cooked.base(), &buf);
                    transformed.signal(&mut ctx.thread);
                }
                _ => {
                    // Consumer: fold the cooked batch.
                    produced_wait(&transformed, ctx, batch);
                    let mut buf = vec![0.0; BATCH];
                    ctx.read_f64_slice(cooked.base(), &mut buf);
                    checksum += buf.iter().sum::<f64>();
                    consumed.signal(&mut ctx.thread);
                }
            }
        }
        checksum
    });

    // Reference checksum.
    let mut expect = 0.0;
    for batch in 0..BATCHES as u64 {
        for i in 0..BATCH {
            expect += (batch as f64 * 1000.0 + i as f64).sqrt();
        }
    }
    let got: f64 = report.results.iter().sum();
    println!("pipeline checksum: {got:.3} (expected {expect:.3})");
    assert!((got - expect).abs() < 1e-6 * expect);
    println!(
        "virtual time {:.3} ms for {BATCHES} batches of {BATCH}; \
         read misses {} (consumers re-fetch exactly one changed page per hand-off)",
        report.seconds * 1e3,
        report.coherence.read_misses,
    );
}

/// Wait until `flag` has been signalled more than `seen` times.
fn produced_wait(flag: &Arc<DsmFlag>, ctx: &mut argo::ArgoCtx, seen: u64) {
    flag.wait_past(&mut ctx.thread, seen);
}
