//! Heat diffusion: an iterative 2D Jacobi stencil across the cluster —
//! the archetypal barrier-synchronized DSM workload the paper's intro
//! motivates ("run the large library of parallel algorithms that have
//! been developed over the years" unmodified).
//!
//! A plate with hot boundaries relaxes toward steady state. Rows are
//! block-distributed; each iteration reads the neighbouring rows (halo
//! exchange happens *implicitly* through the page cache — no message
//! code), and one hierarchical barrier separates iterations.
//!
//! Run: `cargo run --release --example heat_diffusion`

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};

const N: usize = 128; // plate is N x N
const ITERS: usize = 60;
const HOT: f64 = 100.0;

fn main() {
    let machine = ArgoMachine::new(ArgoConfig::small(4, 4));
    // Double-buffered grid.
    let grids = [
        GlobalF64Array::alloc(machine.dsm(), N * N),
        GlobalF64Array::alloc(machine.dsm(), N * N),
    ];

    let report = machine.run(move |ctx| {
        // Rows 1..N-1 are interior; split them among threads.
        let nt = ctx.nthreads();
        let rows_per = (N - 2).div_ceil(nt);
        let lo = 1 + ctx.tid() * rows_per;
        let hi = (lo + rows_per).min(N - 1);

        // Thread 0 sets the hot top/bottom boundaries in both buffers.
        if ctx.tid() == 0 {
            for g in &grids {
                for j in 0..N {
                    g.set(ctx, j, HOT); // top row
                    g.set(ctx, (N - 1) * N + j, HOT); // bottom row
                }
            }
        }
        ctx.start_measurement();
        ctx.barrier();

        let mut rows: [Vec<f64>; 3] = [vec![0.0; N], vec![0.0; N], vec![0.0; N]];
        let mut out = vec![0.0f64; N];
        let mut local_residual = 0.0;
        for step in 0..ITERS {
            let src = &grids[step % 2];
            let dst = &grids[(step + 1) % 2];
            local_residual = 0.0;
            for i in lo..hi {
                // Read the three stencil rows (halo rows come through the
                // page cache; after the first touch they are hits until a
                // neighbour's write invalidates them at the barrier).
                for (k, row) in rows.iter_mut().enumerate() {
                    ctx.read_f64_slice(src.addr((i - 1 + k) * N), row);
                }
                out[0] = rows[1][0];
                out[N - 1] = rows[1][N - 1];
                for j in 1..(N - 1) {
                    let v = 0.25 * (rows[0][j] + rows[2][j] + rows[1][j - 1] + rows[1][j + 1]);
                    local_residual += (v - rows[1][j]).abs();
                    out[j] = v;
                }
                ctx.thread.compute(N as u64 * 6);
                ctx.write_f64_slice(dst.addr(i * N), &out);
            }
            ctx.barrier();
        }
        local_residual
    });

    let residual: f64 = report.results.iter().sum();
    println!("heat diffusion {N}x{N}, {ITERS} iterations on 4 nodes x 4 threads");
    println!("final residual (L1 change per sweep): {residual:.4}");
    assert!(residual.is_finite() && residual > 0.0);
    println!(
        "virtual time: {:.3} ms; {} read misses, {} writebacks, SI kept {} pages",
        report.seconds * 1e3,
        report.coherence.read_misses,
        report.coherence.writebacks,
        report.coherence.si_kept,
    );
    // A cell two rows in from the hot boundary must have warmed (heat
    // travels ~1 row per sweep; the plate center needs ~N²/4 sweeps).
    let dsm = machine.dsm();
    let near = f64::from_bits(dsm.peek_u64(grids[ITERS % 2].addr(2 * N + N / 2)));
    println!("temperature two rows from the hot edge: {near:.2} (boundary {HOT})");
    assert!(near > 1.0 && near < HOT);
}
