//! Critical-section-heavy workload: a shared ledger updated under one
//! lock from every node — the scenario HQDL (§4.2) exists for.
//!
//! Threads on all nodes post transfers between accounts of a ledger that
//! lives in global memory. Instead of bouncing the lock (and the ledger's
//! pages) between nodes for every transfer, each transfer is *delegated*:
//! whichever node holds the global lock executes a whole batch locally,
//! with one SI fence at batch start and one SD at batch end. The same
//! workload is also run under the distributed cohort lock for contrast.
//!
//! Run: `cargo run --release --example bank_delegation`

use argo::{ArgoConfig, ArgoMachine};
use vela::{DsmCohortLock, Hqdl};

const ACCOUNTS: usize = 1024;
const TRANSFERS_PER_THREAD: usize = 200;

fn ledger_total(machine: &ArgoMachine, base: mem::GlobalAddr) -> i64 {
    (0..ACCOUNTS)
        .map(|i| machine.dsm().peek_u64(base.offset(i as u64 * 8)) as i64)
        .sum()
}

fn run(use_hqdl: bool) -> (u64, i64) {
    let machine = ArgoMachine::new(ArgoConfig::small(4, 4));
    let dsm = machine.dsm().clone();
    let base = dsm.allocator().alloc_pages(8).expect("global memory");
    let hqdl = Hqdl::new(dsm.clone(), 256);
    let cohort = DsmCohortLock::new(dsm.clone(), 48);

    let d0 = dsm.clone();
    let report = machine.run(move |ctx| {
        if ctx.tid() == 0 {
            for i in 0..ACCOUNTS {
                d0.write_u64(&mut ctx.thread, base.offset(i as u64 * 8), 1000);
            }
        }
        ctx.start_measurement();
        let mut seed = 0x9E3779B97F4A7C15u64.wrapping_mul(ctx.tid() as u64 + 1);
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..TRANSFERS_PER_THREAD {
            let from = (next() as usize) % ACCOUNTS;
            let mut to = (next() as usize) % ACCOUNTS;
            if to == from {
                // A self-transfer through read-read-write-write would mint
                // money (the second read sees the pre-debit balance).
                to = (to + 1) % ACCOUNTS;
            }
            let amount = next() % 10;
            let dsm = d0.clone();
            let transfer = move |ht: &mut simnet::SimThread| {
                let a = dsm.read_u64(ht, base.offset(from as u64 * 8));
                let b = dsm.read_u64(ht, base.offset(to as u64 * 8));
                dsm.write_u64(ht, base.offset(from as u64 * 8), a.wrapping_sub(amount));
                dsm.write_u64(ht, base.offset(to as u64 * 8), b.wrapping_add(amount));
            };
            if use_hqdl {
                // Detached delegation: post the transfer and move on.
                let _ = hqdl.delegate(&mut ctx.thread, transfer);
            } else {
                cohort.with(&mut ctx.thread, transfer);
            }
        }
        if use_hqdl {
            hqdl.delegate_wait(&mut ctx.thread, |_| {});
        }
        0.0
    });
    (report.cycles, ledger_total(&machine, base))
}

fn main() {
    let (hqdl_cycles, hqdl_total) = run(true);
    let (cohort_cycles, cohort_total) = run(false);
    let expected = (ACCOUNTS as i64) * 1000;
    println!("ledger conservation: HQDL {hqdl_total}, cohort {cohort_total} (expected {expected})");
    assert_eq!(hqdl_total, expected, "HQDL lost money!");
    assert_eq!(cohort_total, expected, "cohort lost money!");
    println!(
        "virtual time for {} transfers from 16 threads on 4 nodes:",
        16 * TRANSFERS_PER_THREAD
    );
    println!("  HQDL   : {:.3} ms", hqdl_cycles as f64 / 3.4e6);
    println!("  Cohort : {:.3} ms", cohort_cycles as f64 / 3.4e6);
    println!(
        "  HQDL speedup over cohort: {:.2}x (delegation batches critical sections\n\
         on one node instead of migrating the ledger's pages per transfer)",
        cohort_cycles as f64 / hqdl_cycles as f64
    );
}
